#!/usr/bin/env python3
"""Design-space exploration: provisioning hardware for a workload mix.

The paper frames GPUs as spanning "small, embedded designs to large,
high-powered discrete cards". Given a workload mix, which point in that
space should you build or buy? This example uses the scaling dataset to
answer two provisioning questions for three realistic mixes:

1. the *cheapest* configuration (by a simple area+power cost proxy)
   that delivers at least 80% of flagship performance, and
2. the *best-value* configuration (performance per unit cost).

The punchline mirrors the taxonomy: compute mixes want every CU at full
clock, memory mixes hit flagship-class performance with half the CUs,
and latency/graph mixes barely justify more than an APU-class device.
"""

from repro.report import render_table
from repro.suites import all_kernels
from repro.sweep import PAPER_SPACE, SweepRunner

#: Workload mixes: (label, predicate over kernel full names).
MIXES = [
    ("dense compute", ("shoc/md5hash", "amdapp/nbody", "shoc/md",
                       "rodinia/lavamd")),
    ("streaming hpc", ("shoc/triad", "parboil/lbm", "proxyapps/hpgmg",
                       "proxyapps/minife")),
    ("graph analytics", ("pannotia/bc", "pannotia/sssp", "rodinia/bfs",
                         "pannotia/pagerank")),
]


def config_cost(config) -> float:
    """Relative cost proxy: die area ~ CUs, power ~ CUs x f_eng plus
    the memory interface running at f_mem."""
    area = config.cu_count
    dynamic = config.cu_count * (config.engine_mhz / 1000.0)
    memory = 16.0 * (config.memory_mhz / 1250.0)
    return area + 2.0 * dynamic + memory


def mix_performance(dataset, prefixes):
    """Geometric-mean relative performance per configuration."""
    import numpy as np

    rows = [
        i for i, name in enumerate(dataset.kernel_names)
        if name.startswith(prefixes)
    ]
    perf = dataset.perf[rows]
    # Normalise per kernel so no single kernel dominates the mean.
    relative = perf / perf.max(axis=(1, 2, 3), keepdims=True)
    return np.exp(np.log(relative).mean(axis=0))


def explore(dataset, label, prefixes):
    import numpy as np

    score = mix_performance(dataset, prefixes)
    space = dataset.space
    flagship = score[-1, -1, -1]

    best_cheap = None
    best_value = None
    for flat in range(space.size):
        c, e, m = space.unflatten(flat)
        config = space.config(c, e, m)
        cost = config_cost(config)
        perf = score[c, e, m]
        if perf >= 0.8 * flagship:
            if best_cheap is None or cost < best_cheap[1]:
                best_cheap = (config, cost, perf)
        value = perf / cost
        if best_value is None or value > best_value[1]:
            best_value = (config, value, perf, cost)

    cheap_config, cheap_cost, cheap_perf = best_cheap
    value_config, _, value_perf, value_cost = best_value
    flagship_config = space.max_config
    return [
        [label, "flagship", flagship_config.label(),
         config_cost(flagship_config), 100.0],
        [label, "cheapest @ 80%", cheap_config.label(), cheap_cost,
         100.0 * cheap_perf / flagship],
        [label, "best value", value_config.label(), value_cost,
         100.0 * value_perf / flagship],
    ]


def main() -> None:
    kernels = all_kernels()
    print(f"sweeping {len(kernels)} kernels over {PAPER_SPACE.size} "
          "configurations...")
    dataset = SweepRunner().run(kernels, PAPER_SPACE)

    rows = []
    for label, prefixes in MIXES:
        rows.extend(explore(dataset, label, prefixes))
    print()
    print(render_table(
        ["workload mix", "pick", "configuration", "cost (a.u.)",
         "% of flagship perf"],
        rows,
        title="Provisioning guidance from scaling data",
        precision=1,
    ))


if __name__ == "__main__":
    main()
