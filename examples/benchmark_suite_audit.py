#!/usr/bin/env python3
"""Benchmark-suite audit: does your suite scale to modern GPUs?

The paper's closing finding is that several mainstream GPGPU suites
cannot exercise a modern (44-CU) GPU, so results collected with them
understate large-device behaviour. This example reproduces that audit
for every suite in the catalog and, for the worst offender, drills
into *which* kernels stall and why — separating "the launch is too
small" (a benchmark bug: fix the inputs) from "the kernel saturates
memory bandwidth" (a hardware balance property: not the benchmark's
fault).

Usage::

    python examples/benchmark_suite_audit.py [suite]
"""

import sys

from repro import classify
from repro.analysis import analyse_all_suites, kernel_scalability
from repro.report import render_table
from repro.suites import all_kernels, kernel_by_name
from repro.sweep import PAPER_SPACE, SweepRunner
from repro.taxonomy import TaxonomyCategory


def audit_all(dataset, taxonomy):
    """Print the per-suite verdict table; return the worst suite."""
    results = analyse_all_suites(dataset, taxonomy)
    rows = [
        [
            s.suite,
            s.kernel_count,
            100.0 * (s.fraction_parallelism_starved or 0.0),
            s.median_useful_cus,
            s.scales_to_modern_gpus,
        ]
        for s in sorted(
            results.values(),
            key=lambda s: -(s.fraction_parallelism_starved or 0.0),
        )
    ]
    print(render_table(
        ["suite", "kernels", "% starved of work", "median useful CUs",
         "scales to 44 CUs?"],
        rows,
        title="Suite scalability audit",
        precision=1,
    ))
    return rows[0][0]


def drill_into(suite_name, dataset, taxonomy):
    """Per-kernel diagnosis for one suite."""
    print(f"\nDiagnosis for {suite_name!r}:")
    rows = []
    for name in dataset.kernel_names:
        if not name.startswith(suite_name + "/"):
            continue
        label = taxonomy.label_for(name)
        scalability = kernel_scalability(dataset, name)
        if scalability.scales_to_full_device:
            continue
        kernel = kernel_by_name(name)
        if label.category in (
            TaxonomyCategory.PARALLELISM_LIMITED, TaxonomyCategory.PLATEAU
        ):
            diagnosis = (
                f"starved: {kernel.geometry.num_workgroups} workgroups "
                "— grow the input"
            )
        elif label.category is TaxonomyCategory.CU_INVERSE:
            diagnosis = "inverse: contention grows with CUs"
        else:
            diagnosis = f"{label.category.value}: hardware-balance limit"
        rows.append([name.split("/", 1)[1], scalability.useful_cus,
                     diagnosis])
    print(render_table(
        ["kernel", "useful CUs", "diagnosis"],
        rows,
    ))


def main() -> None:
    print(f"collecting the full study "
          f"(267 kernels x {PAPER_SPACE.size} configs)...")
    dataset = SweepRunner().run(all_kernels(), PAPER_SPACE)
    taxonomy = classify(dataset)

    worst = audit_all(dataset, taxonomy)
    target = sys.argv[1] if len(sys.argv) > 1 else worst
    drill_into(target, dataset, taxonomy)


if __name__ == "__main__":
    main()
