#!/usr/bin/env python3
"""Predict a new kernel's full scaling surface from seven runs.

Collecting a kernel's complete 891-configuration surface means 891
reboots/re-clocks on real hardware. The ``repro.predict`` extension
shows the alternative the paper's authors pursued: measure the new
kernel at seven probe configurations, match its response against the
267-kernel corpus, and transplant the nearest neighbours' surfaces.

Here the "new" kernel is a molecular-dynamics force kernel that is
*not* in the corpus (we synthesise it with the performance model and
then hide it). The script reports the predicted vs. actual speedup at
several configurations of interest and the corpus kernels the
predictor matched.
"""

from repro import KernelCharacteristics, collect_paper_dataset
from repro.gpu import GpuSimulator, HardwareConfig
from repro.kernels import Kernel, LaunchGeometry, ResourceUsage
from repro.predict import ScalingPredictor
from repro.report import render_table

NEW_KERNEL = Kernel(
    program="userapp", name="md_force", suite="user",
    characteristics=KernelCharacteristics(
        valu_ops_per_item=4200.0,
        global_load_bytes_per_item=50.0,
        global_store_bytes_per_item=12.0,
        l1_reuse=0.35,
        l2_reuse=0.45,
        coalescing_efficiency=0.85,
        memory_parallelism=6.0,
    ),
    geometry=LaunchGeometry(1 << 18, 256),
    resources=ResourceUsage(vgprs=76),
)

QUERIES = [
    HardwareConfig(44, 1000.0, 1250.0),
    HardwareConfig(24, 900.0, 1112.5),
    HardwareConfig(8, 600.0, 425.0),
    HardwareConfig(44, 1000.0, 150.0),
]


def main() -> None:
    print("building the 267-kernel corpus (one full sweep)...")
    corpus_data = collect_paper_dataset()
    predictor = ScalingPredictor(corpus_data, k=3)

    # "Measure" the new kernel at the seven probe configurations.
    simulator = GpuSimulator()
    probe_configs = predictor.probe_configs()
    probes = [
        simulator.performance(NEW_KERNEL, config)
        for config in probe_configs
    ]
    print(f"measured the new kernel at {len(probes)} probe configs")

    prediction = predictor.predict_cube(probes)
    print("nearest corpus kernels:",
          ", ".join(prediction.neighbours))

    space = corpus_data.space
    base = probes[0]
    rows = []
    for config in QUERIES:
        c = space.cu_counts.index(config.cu_count)
        e = space.engine_mhz.index(config.engine_mhz)
        m = space.memory_mhz.index(config.memory_mhz)
        predicted = prediction.cube[c, e, m] / base
        actual = simulator.performance(NEW_KERNEL, config) / base
        rows.append([
            config.label(), predicted, actual,
            100.0 * abs(predicted - actual) / actual,
        ])
    print()
    print(render_table(
        ["configuration", "predicted speedup", "actual speedup",
         "error %"],
        rows,
        title="Seven-probe surface prediction vs ground truth",
    ))


if __name__ == "__main__":
    main()
