#!/usr/bin/env python3
"""Characterise your own kernel against the taxonomy.

The library is not tied to the shipped catalog: describe any kernel's
resource profile and get (1) its predicted scaling behaviour on the
modelled GPU, (2) its taxonomy label, and (3) actionable advice —
which hardware knob buys performance, and what in the *kernel* is
capping it.

The example characterises a sparse matrix-vector product three ways —
a naive scalar-CSR version, a coalesced vector-CSR version, and a
blocked version whose per-workgroup slices thrash the shared L2 — and
shows how each implementation choice moves the kernel across taxonomy
categories.
"""

from repro import KernelCharacteristics, classify
from repro.analysis import kernel_sensitivity
from repro.kernels import Kernel, LaunchGeometry, ResourceUsage
from repro.report import render_table
from repro.sweep import PAPER_SPACE, SweepRunner

MATRIX_MIB = 96.0

MY_KERNELS = [
    Kernel(
        program="myspmv", name="csr_scalar", suite="user",
        characteristics=KernelCharacteristics(
            valu_ops_per_item=48.0,
            global_load_bytes_per_item=52.0,
            global_store_bytes_per_item=4.0,
            l1_reuse=0.05,
            l2_reuse=0.3,
            footprint_bytes=MATRIX_MIB * 1024 * 1024,
            shared_footprint=0.5,         # reuse comes from the shared x
            coalescing_efficiency=0.25,   # one thread per row: strided
            memory_parallelism=4.0,
        ),
        geometry=LaunchGeometry(1 << 21, 256),
        resources=ResourceUsage(vgprs=28),
    ),
    Kernel(
        program="myspmv", name="csr_vector", suite="user",
        characteristics=KernelCharacteristics(
            valu_ops_per_item=56.0,
            global_load_bytes_per_item=52.0,
            global_store_bytes_per_item=4.0,
            l1_reuse=0.15,
            l2_reuse=0.3,
            footprint_bytes=MATRIX_MIB * 1024 * 1024,
            shared_footprint=0.5,         # reuse comes from the shared x
            coalescing_efficiency=0.8,    # wavefront per row: coalesced
            memory_parallelism=8.0,
        ),
        geometry=LaunchGeometry(1 << 21, 256),
        resources=ResourceUsage(vgprs=32),
    ),
    Kernel(
        program="myspmv", name="csr_blocked", suite="user",
        characteristics=KernelCharacteristics(
            valu_ops_per_item=64.0,
            global_load_bytes_per_item=48.0,
            global_store_bytes_per_item=4.0,
            l1_reuse=0.1,
            l2_reuse=0.9,                 # block reuse...
            footprint_bytes=24.0 * 1024 * 1024,
            shared_footprint=0.0,         # ...but private per workgroup
            coalescing_efficiency=0.6,
            row_locality_sensitivity=0.7,
            memory_parallelism=6.0,
        ),
        geometry=LaunchGeometry(1 << 20, 256),
        resources=ResourceUsage(vgprs=36),
    ),
]

ADVICE = {
    "compute_bound": "buy CUs/clock; the kernel converts them directly",
    "bandwidth_bound": "buy memory bandwidth; extra CUs idle on DRAM",
    "balanced": "clocks trade off; size both to the balance point",
    "cu_inverse": "CAP the CU count near the peak; contention beyond it",
    "parallelism_limited": "grow the launch before growing the GPU",
    "plateau": "hardware cannot help; restructure the kernel",
    "mixed": "profile further; no single knob dominates",
}


def main() -> None:
    dataset = SweepRunner().run(MY_KERNELS, PAPER_SPACE)
    taxonomy = classify(dataset)

    rows = []
    for label in taxonomy.labels:
        sensitivity = kernel_sensitivity(dataset, label.kernel_name)
        rows.append([
            label.kernel_name.split("/")[1],
            label.category.value,
            f"{label.features.cu.peak_gain:.1f}x",
            f"{label.features.end_to_end_gain:.1f}x",
            sensitivity.dominant_knob,
            ADVICE[label.category.value],
        ])
    print(render_table(
        ["kernel", "category", "peak CU gain", "total gain",
         "dominant knob", "advice"],
        rows,
        title="Your kernels, characterised",
    ))

    # Counterfactuals: what would the standard optimisations buy?
    from repro.predict import what_if

    print()
    print("Optimisation counterfactuals (flagship configuration):")
    for kernel in MY_KERNELS:
        results = [r for r in what_if(kernel) if r.speedup >= 1.1]
        if not results:
            print(f"  {kernel.name}: already near machine limits")
            continue
        top = results[0]
        print(f"  {kernel.name}: {top.scenario.description} "
              f"-> {top.speedup:.1f}x")


if __name__ == "__main__":
    main()
