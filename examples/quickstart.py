#!/usr/bin/env python3
"""Quickstart: collect scaling data and classify it.

Runs the paper's pipeline end-to-end on one suite (Pannotia, the graph
workloads — the richest source of non-obvious scaling) and prints the
taxonomy labels. Swap ``all_kernels("pannotia")`` for ``all_kernels()``
to run the full 267-kernel / 891-configuration study (a few seconds).
"""

from repro import classify
from repro.report import render_table
from repro.suites import all_kernels
from repro.sweep import PAPER_SPACE, SweepRunner


def main() -> None:
    kernels = all_kernels("pannotia")
    print(f"sweeping {len(kernels)} kernels over "
          f"{PAPER_SPACE.size} hardware configurations...")
    dataset = SweepRunner().run(kernels, PAPER_SPACE)

    taxonomy = classify(dataset)

    rows = []
    for label in taxonomy.labels:
        rows.append([
            label.kernel_name,
            label.category.value,
            label.cu_behaviour.value,
            label.engine_behaviour.value,
            label.memory_behaviour.value,
            label.features.end_to_end_gain,
        ])
    print()
    print(render_table(
        ["kernel", "category", "cu", "engine", "memory", "total gain"],
        rows,
        title="Pannotia scaling taxonomy",
        precision=1,
    ))

    print()
    counts = taxonomy.category_counts()
    populated = [(c.value, n) for c, n in counts.items() if n]
    print(render_table(["category", "kernels"], populated,
                       title="Summary"))


if __name__ == "__main__":
    main()
