#!/usr/bin/env python3
"""Energy-aware DVFS: pick operating points from the taxonomy.

The CU-fusing and dual-clock knobs the paper sweeps are power-
management hardware. This example closes the loop: for a representative
kernel of each taxonomy category, find the minimum-energy and
minimum-EDP operating points in the 891-configuration space, and
compare against always-running-flagship.

The result is the DVFS cheat-sheet the taxonomy implies:

* compute-bound    -> race to idle (flagship is near energy-optimal);
* bandwidth-bound  -> keep the memory clock, shed CUs/engine clock;
* plateau          -> drop every knob; the work does not care;
* cu-inverse       -> cap the CU count below the device size — the
                      rare case where LESS hardware is faster AND
                      cheaper.
"""

from repro import classify, collect_paper_dataset
from repro.power import DvfsOptimizer, EnergyModel, Objective
from repro.report import render_table
from repro.suites import kernel_by_name
from repro.taxonomy import TaxonomyCategory

CATEGORIES = (
    TaxonomyCategory.COMPUTE_BOUND,
    TaxonomyCategory.BANDWIDTH_BOUND,
    TaxonomyCategory.BALANCED,
    TaxonomyCategory.CU_INVERSE,
    TaxonomyCategory.PLATEAU,
)


def main() -> None:
    print("collecting the study and classifying (one sweep)...")
    dataset = collect_paper_dataset()
    taxonomy = classify(dataset)

    energy_model = EnergyModel()
    optimizer = DvfsOptimizer(energy_model)
    flagship = dataset.space.max_config

    rows = []
    for category in CATEGORIES:
        members = taxonomy.kernels_in(category)
        if not members:
            continue
        kernel = kernel_by_name(members[0])
        at_flagship = energy_model.evaluate(kernel, flagship)
        min_energy = optimizer.optimise(kernel, Objective.MIN_ENERGY)
        min_edp = optimizer.optimise(kernel, Objective.MIN_EDP)
        rows.append([
            category.value,
            kernel.full_name,
            min_energy.config.label(),
            100.0 * (1.0 - min_energy.energy_j / at_flagship.energy_j),
            100.0 * (min_energy.time_s / at_flagship.time_s - 1.0),
            min_edp.config.label(),
        ])

    print()
    print(render_table(
        ["category", "kernel", "min-energy config", "energy saved %",
         "slowdown %", "min-EDP config"],
        rows,
        title="Energy-aware operating points by taxonomy category",
        precision=1,
    ))


if __name__ == "__main__":
    main()
