#!/usr/bin/env python3
"""Program-level speedup analysis: where does the app time go?

Kernels scale; *applications* are weighted mixes of kernels, and the
kernel with the worst scaling ends up owning the runtime on big
hardware (Amdahl's law over heterogeneous launches). This example
builds realistic invocation-weighted profiles for three catalog
programs, compares program-level speedup against each program's best
kernel, and names the kernel that caps further scaling.

The punchline operationalises the paper's benchmark critique at app
granularity: Rodinia's `lud` is capped by its single-workgroup diagonal
kernel long before the GPU runs out of CUs.
"""

from repro.gpu import HardwareConfig, GpuSimulator
from repro.kernels import ProgramProfile
from repro.report import render_table
from repro.suites import suite

SMALL = HardwareConfig(4, 1000.0, 1250.0)
LARGE = HardwareConfig(44, 1000.0, 1250.0)

#: (suite, program, {kernel: invocations per run}).
PROFILES = [
    ("rodinia", "lud", {
        "lud_diagonal": 64, "lud_perimeter": 63, "lud_internal": 63,
    }),
    ("rodinia", "srad", {
        "srad_cuda_1": 100, "srad_cuda_2": 100, "extract": 1,
        "compress": 1, "reduce": 100,
    }),
    ("proxyapps", "lulesh", {
        "calc_force_elems": 50, "integrate_stress": 50,
        "calc_eos": 50, "update_volumes": 50,
    }),
]


def build_profile(suite_name, program_name, counts):
    program = suite(suite_name).program(program_name)
    pairs = []
    for kernel in program.kernels:
        if kernel.name in counts:
            pairs.append((kernel, counts[kernel.name]))
    return ProgramProfile.from_counts(
        f"{suite_name}/{program_name}", pairs
    )


def main() -> None:
    simulator = GpuSimulator()
    rows = []
    for suite_name, program_name, counts in PROFILES:
        profile = build_profile(suite_name, program_name, counts)

        program_speedup = profile.speedup(LARGE, SMALL, simulator)
        best_kernel_speedup = max(
            simulator.time_s(inv.kernel, SMALL)
            / simulator.time_s(inv.kernel, LARGE)
            for inv in profile.invocations
        )
        limiter, cap = profile.amdahl_cap(LARGE, SMALL, simulator)
        attribution = profile.time_attribution(LARGE, simulator)
        hog = max(attribution, key=attribution.__getitem__)

        rows.append([
            profile.name,
            program_speedup,
            best_kernel_speedup,
            f"{hog.split('.')[-1]} ({100 * attribution[hog]:.0f}%)",
            limiter.split(".")[-1],
            cap,
        ])

    print(render_table(
        ["program", "app speedup 4->44 CUs", "best kernel speedup",
         "time hog at 44 CUs", "Amdahl limiter", "cap"],
        rows,
        title="Program-level scaling (invocation-weighted)",
        precision=1,
    ))


if __name__ == "__main__":
    main()
