"""The stdlib metrics core and its Prometheus text rendering."""

from __future__ import annotations

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c_total", "help")
        assert counter.value() == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total() == 3.5

    def test_labelled_samples_are_independent(self):
        counter = Counter("c_total", "help", ("endpoint", "status"))
        counter.inc(1.0, "/v1/simulate", "200")
        counter.inc(1.0, "/v1/simulate", "400")
        counter.inc(1.0, "/healthz", "200")
        assert counter.value("/v1/simulate", "200") == 1
        assert counter.total() == 3

    def test_label_arity_enforced(self):
        counter = Counter("c_total", "help", ("endpoint",))
        with pytest.raises(ValueError):
            counter.inc(1.0)

    def test_render_sorted_and_typed(self):
        counter = Counter("c_total", "requests", ("status",))
        counter.inc(2.0, "200")
        counter.inc(1.0, "404")
        lines = counter.render()
        assert lines[0] == "# HELP c_total requests"
        assert lines[1] == "# TYPE c_total counter"
        assert lines[2] == 'c_total{status="200"} 2'
        assert lines[3] == 'c_total{status="404"} 1'

    def test_label_escaping(self):
        counter = Counter("c_total", "h", ("path",))
        counter.inc(1.0, 'we"ird\npath\\x')
        rendered = "\n".join(counter.render())
        assert r'we\"ird\npath\\x' in rendered


class TestGauge:
    def test_set_and_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.dec(3)
        assert gauge.value() == 7
        assert "# TYPE g gauge" in gauge.render()


class TestHistogram:
    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", (1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", "help", (2.0, 1.0))

    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", "help", (0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts["0.1"] == 1
        assert counts["1"] == 3  # cumulative
        assert counts["10"] == 4
        assert counts["+Inf"] == 5
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)

    def test_quantile_estimates_from_bounds(self):
        histogram = Histogram("h", "help", (1.0, 2.0, 4.0))
        for value in (0.5,) * 50 + (1.5,) * 49 + (3.0,):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.99) == 2.0
        assert histogram.quantile(1.0) == 4.0

    def test_empty_quantile_is_nan(self):
        import math

        assert math.isnan(Histogram("h", "h", (1.0,)).quantile(0.5))

    def test_render_shape(self):
        histogram = Histogram("h", "help", (1.0,))
        histogram.observe(0.5)
        rendered = "\n".join(histogram.render())
        assert 'h_bucket{le="1"} 1' in rendered
        assert 'h_bucket{le="+Inf"} 1' in rendered
        assert "h_sum 0.5" in rendered
        assert "h_count 1" in rendered


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total", "help")
        assert first is second

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "help")
        with pytest.raises(ValueError):
            registry.gauge("x", "help")

    def test_render_concatenates_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "second").inc()
        registry.counter("a_total", "first").inc()
        rendered = registry.render()
        assert rendered.index("a_total") < rendered.index("b_total")
        assert rendered.endswith("\n")


class TestServiceMetrics:
    def test_request_recording(self):
        metrics = ServiceMetrics()
        metrics.record_request("/v1/simulate", 200, 0.003)
        metrics.record_request("/v1/simulate", 400, 0.001)
        assert metrics.requests.value("/v1/simulate", "200") == 1
        assert metrics.request_latency.count == 2

    def test_batch_recording(self):
        metrics = ServiceMetrics()
        metrics.record_batch(7, ["study", "point", "point"])
        assert metrics.batches.value() == 1
        assert metrics.batch_size.sum == 7
        assert metrics.engine_calls.value("study") == 1
        assert metrics.engine_calls.value("point") == 2

    def test_cache_and_rejection_recording(self):
        metrics = ServiceMetrics()
        metrics.record_cache("hit", 3)
        metrics.record_cache("miss", 0)  # no-op
        metrics.record_rejection("overload")
        assert metrics.cache_events.value("hit") == 3
        assert metrics.cache_events.value("miss") == 0
        assert metrics.rejected.value("overload") == 1

    def test_gauges(self):
        metrics = ServiceMetrics()
        metrics.set_queue_depth(12)
        metrics.adjust_inflight(1)
        metrics.adjust_inflight(1)
        metrics.adjust_inflight(-1)
        assert metrics.queue_depth.value() == 12
        assert metrics.inflight.value() == 1

    def test_render_exposes_every_family(self):
        metrics = ServiceMetrics()
        rendered = metrics.render()
        for name in (
            "gpuscale_requests_total",
            "gpuscale_request_latency_seconds",
            "gpuscale_batches_total",
            "gpuscale_batch_size",
            "gpuscale_engine_calls_total",
            "gpuscale_cache_events_total",
            "gpuscale_rejected_total",
            "gpuscale_queue_depth",
            "gpuscale_inflight_requests",
        ):
            assert f"# TYPE {name} " in rendered
