"""The resilience primitives: breaker, budget, deadlines, brownout.

Everything here drives the clock explicitly (the state machines take
``now``), so the transitions pinned are exact, not timing-dependent.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.service.batcher import GridQuery, PointQuery
from repro.service.resilience import (
    BROWNOUT_MODES,
    BreakerConfig,
    BrownoutExecutor,
    CLOSED,
    CircuitBreaker,
    HALF_OPEN,
    OPEN,
    RestartBudget,
    deadline_from_timeout,
    expired,
    remaining_s,
)
from repro.suites import kernel_by_name
from repro.sweep.space import ConfigurationSpace

KERNEL = "rodinia/bfs.kernel1"
SMALL_SPACE = ConfigurationSpace(
    cu_counts=(4, 16, 44),
    engine_mhz=(300.0, 1000.0),
    memory_mhz=(475.0, 1250.0),
)


class TestDeadlineHelpers:
    def test_deadline_is_absolute(self):
        assert deadline_from_timeout(5.0, now=100.0) == 105.0
        assert deadline_from_timeout(None) is None

    def test_remaining_counts_down_and_goes_negative(self):
        deadline = deadline_from_timeout(2.0, now=10.0)
        assert remaining_s(deadline, now=11.0) == pytest.approx(1.0)
        assert remaining_s(deadline, now=13.0) == pytest.approx(-1.0)
        assert remaining_s(None, now=13.0) is None

    def test_expired(self):
        assert not expired(None, now=1e9)
        assert not expired(100.0, now=99.9)
        assert expired(100.0, now=100.0)
        assert expired(100.0, now=100.1)


class TestBreakerConfig:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(window_s=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_s=-1.0)


class TestCircuitBreaker:
    def make(self, **kwargs):
        config = BreakerConfig(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            window_s=kwargs.pop("window_s", 10.0),
            cooldown_s=kwargs.pop("cooldown_s", 5.0),
        )
        return CircuitBreaker(config, **kwargs)

    def test_starts_closed_and_allows(self):
        breaker = self.make()
        assert breaker.state(now=0.0) == CLOSED
        assert breaker.allow(now=0.0)

    def test_opens_at_threshold_within_window(self):
        breaker = self.make()
        breaker.record_failure(now=1.0)
        breaker.record_failure(now=2.0)
        assert breaker.state(now=2.0) == CLOSED
        breaker.record_failure(now=3.0)
        assert breaker.state(now=3.0) == OPEN
        assert not breaker.allow(now=3.0)

    def test_stale_failures_age_out_of_the_window(self):
        breaker = self.make()
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=1.0)
        # The window slides past the first two before the third.
        breaker.record_failure(now=20.0)
        assert breaker.state(now=20.0) == CLOSED

    def test_half_open_after_cooldown(self):
        breaker = self.make()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(now=t)
        assert breaker.state(now=7.9) == OPEN
        assert breaker.state(now=8.0) == HALF_OPEN
        assert breaker.allow(now=8.0)

    def test_half_open_success_closes(self):
        breaker = self.make()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(now=t)
        breaker.record_success(now=9.0)
        assert breaker.state(now=9.0) == CLOSED

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        breaker = self.make()
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(now=t)
        assert breaker.state(now=8.0) == HALF_OPEN
        breaker.record_failure(now=8.0)
        assert breaker.state(now=8.1) == OPEN
        # The new cooldown runs from the probe failure, not the
        # original open.
        assert breaker.state(now=12.9) == OPEN
        assert breaker.state(now=13.0) == HALF_OPEN

    def test_success_resets_the_failure_count(self):
        breaker = self.make()
        breaker.record_failure(now=1.0)
        breaker.record_failure(now=2.0)
        breaker.record_success(now=3.0)
        breaker.record_failure(now=4.0)
        breaker.record_failure(now=5.0)
        assert breaker.state(now=5.0) == CLOSED

    def test_transition_callback_sees_every_edge(self):
        edges = []
        breaker = self.make(
            on_transition=lambda old, new: edges.append((old, new))
        )
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(now=t)
        breaker.state(now=8.0)
        breaker.record_success(now=8.0)
        assert edges == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]


class TestRestartBudget:
    def test_grants_up_to_budget_then_refuses(self):
        budget = RestartBudget(budget=2, window_s=60.0)
        assert budget.try_acquire(now=0.0)
        assert budget.try_acquire(now=1.0)
        assert not budget.try_acquire(now=2.0)
        assert budget.available(now=2.0) == 0

    def test_window_slides_slots_free(self):
        budget = RestartBudget(budget=2, window_s=60.0)
        budget.try_acquire(now=0.0)
        budget.try_acquire(now=10.0)
        assert not budget.try_acquire(now=59.0)
        assert budget.try_acquire(now=61.0)

    def test_next_free_is_exact(self):
        budget = RestartBudget(budget=1, window_s=60.0)
        budget.try_acquire(now=5.0)
        assert budget.next_free_s(now=20.0) == pytest.approx(45.0)
        assert budget.next_free_s(now=66.0) == 0.0

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RestartBudget(budget=0)
        with pytest.raises(ValueError):
            RestartBudget(window_s=0.0)


class TestBrownoutExecutor:
    def test_modes_are_the_cli_choices(self):
        assert BROWNOUT_MODES == ("off", "auto", "force")

    def test_answers_grids_marked_degraded_with_error_estimate(self):
        brownout = BrownoutExecutor()
        query = GridQuery(kernel_by_name(KERNEL), SMALL_SPACE)
        try:
            result = asyncio.run(brownout.submit(query))
        finally:
            brownout.stop()
        assert result.fidelity == "degraded"
        assert result.kernel_name == KERNEL
        assert result.items_per_second.shape == (3, 2, 2)
        assert np.all(result.items_per_second > 0)
        # The marker is an honest measurement, not a placeholder.
        assert result.error_estimate is not None
        assert 0.0 <= result.error_estimate < 1.0

    def test_degraded_surface_matches_predictor_engine(self):
        from repro.gpu.engine import get_engine

        brownout = BrownoutExecutor()
        query = GridQuery(kernel_by_name(KERNEL), SMALL_SPACE)
        try:
            result = asyncio.run(brownout.submit(query))
        finally:
            brownout.stop()
        direct = get_engine("predictor").simulate_grid(
            kernel_by_name(KERNEL), SMALL_SPACE
        )
        np.testing.assert_array_equal(
            result.items_per_second, direct.items_per_second
        )

    def test_error_estimate_is_cached_per_space(self):
        brownout = BrownoutExecutor()
        first = brownout.error_estimate(SMALL_SPACE)
        second = brownout.error_estimate(SMALL_SPACE)
        assert first == second
        assert SMALL_SPACE in brownout._error_estimates

    def test_rejects_point_queries(self):
        from repro.gpu import W9100_LIKE

        brownout = BrownoutExecutor()
        query = PointQuery(kernel_by_name(KERNEL), W9100_LIKE)
        with pytest.raises(TypeError, match="grid queries only"):
            asyncio.run(brownout.submit(query))

    def test_non_grid_engine_is_refused(self):
        brownout = BrownoutExecutor(engine="does-not-exist")
        with pytest.raises(Exception):
            brownout.error_estimate(SMALL_SPACE)
