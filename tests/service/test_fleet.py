"""The worker fleet: sharding, bit-exactness, supervision, drain.

Three invariants from the fleet design are pinned here:

* **placement** — the consistent-hash ring is deterministic, covers
  every worker, and sends every query against one ``(space, engine)``
  surface to one worker (the property that makes the sweep cache
  single-flight by construction);
* **bit-exactness** — answers that crossed the process boundary and
  the shared-memory result path are bitwise the direct
  :class:`~repro.gpu.simulator.GpuSimulator` answers;
* **supervision** — a SIGKILLed worker is restarted and its in-flight
  queries are resubmitted invisibly, including while a graceful drain
  is already under way: every admitted query is answered before
  ``stop(drain=True)`` returns.
"""

from __future__ import annotations

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.gpu import W9100_LIKE, HardwareConfig
from repro.gpu.simulator import GpuSimulator
from repro.service.batcher import (
    GridQuery,
    PointQuery,
    ServiceClosedError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.router import FleetExecutor, HashRing
from repro.suites import all_kernels, kernel_by_name
from repro.sweep import reduced_space
from repro.sweep.space import PAPER_SPACE

KERNEL = "rodinia/bfs.kernel1"

CONFIGS = (
    W9100_LIKE,
    HardwareConfig(cu_count=8, engine_mhz=600.0, memory_mhz=475.0),
    HardwareConfig(cu_count=24, engine_mhz=925.0, memory_mhz=950.0),
)


def run(coro):
    return asyncio.run(coro)


class TestHashRing:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            HashRing(0)

    def test_deterministic_across_instances(self):
        first, second = HashRing(4), HashRing(4)
        keys = [f"shard-{i}" for i in range(256)]
        assert [first.lookup(k) for k in keys] == [
            second.lookup(k) for k in keys
        ]

    def test_every_worker_owns_a_fair_share(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        samples = 4000
        for i in range(samples):
            counts[ring.lookup(f"key-{i}")] += 1
        assert all(count > 0 for count in counts)
        # Virtual nodes keep the skew bounded: no worker owns less
        # than half or more than double its fair share.
        for count in counts:
            assert samples / 8 < count < samples / 2

    def test_single_worker_takes_everything(self):
        ring = HashRing(1)
        assert {ring.lookup(f"k{i}") for i in range(64)} == {0}


class TestSharding:
    """Placement rules, checked without spawning any process."""

    def test_same_space_routes_to_one_worker(self):
        fleet = FleetExecutor(4, use_cache=False)
        workers = {
            fleet.worker_for(GridQuery(kernel, PAPER_SPACE))
            for kernel in all_kernels("proxyapps")
        }
        assert len(workers) == 1

    def test_space_key_is_content_addressed_not_identity(self):
        fleet = FleetExecutor(4, use_cache=False)
        kernel = kernel_by_name(KERNEL)
        first = GridQuery(kernel, reduced_space(3, 3, 3))
        second = GridQuery(kernel, reduced_space(3, 3, 3))
        assert first.space is not second.space
        assert fleet.shard_key(first) == fleet.shard_key(second)

    def test_distinct_spaces_get_distinct_keys(self):
        fleet = FleetExecutor(4, use_cache=False)
        kernel = kernel_by_name(KERNEL)
        keys = {
            fleet.shard_key(GridQuery(kernel, space))
            for space in (
                PAPER_SPACE, reduced_space(2, 2, 2), reduced_space(3, 2, 2),
            )
        }
        assert len(keys) == 3

    def test_point_key_pins_kernel_and_config(self):
        fleet = FleetExecutor(4, use_cache=False)
        kernel = kernel_by_name(KERNEL)
        base = fleet.shard_key(PointQuery(kernel, CONFIGS[0]))
        assert base == fleet.shard_key(PointQuery(kernel, CONFIGS[0]))
        assert base != fleet.shard_key(PointQuery(kernel, CONFIGS[1]))
        assert base != fleet.shard_key(
            PointQuery(kernel_by_name("shoc/triad.triad"), CONFIGS[0])
        )

    def test_rejects_non_queries(self):
        fleet = FleetExecutor(2, use_cache=False)

        async def scenario():
            fleet._closed = False  # skip process spawn for a type check
            try:
                await fleet.submit("not a query")
            finally:
                fleet._closed = True

        with pytest.raises(TypeError):
            run(scenario())


class TestFleetProcesses:
    """End-to-end through real spawned worker processes."""

    def test_answers_are_bit_exact_and_fleet_drains(self):
        direct = GpuSimulator("interval")
        kernel = kernel_by_name(KERNEL)
        point_query = PointQuery(kernel, W9100_LIKE)
        grid_query = GridQuery(kernel, PAPER_SPACE)

        async def scenario():
            fleet = FleetExecutor(2, use_cache=False)
            await fleet.start()
            try:
                point, grids = await asyncio.gather(
                    fleet.submit(point_query),
                    asyncio.gather(
                        *(fleet.submit(grid_query) for _ in range(4))
                    ),
                )
                metrics = await fleet.render_metrics(
                    ServiceMetrics().registry
                )
                states = fleet.worker_states()
            finally:
                await fleet.stop(drain=True)
            with pytest.raises(ServiceClosedError):
                await fleet.submit(point_query)
            return point, grids, metrics, states

        point, grids, metrics, states = run(scenario())

        expected_point = direct.simulate(kernel, W9100_LIKE)
        assert point.time_s == float(expected_point.time_s)
        assert point.items_per_second == float(
            expected_point.items_per_second
        )
        expected_grid = direct.simulate_grid(kernel, PAPER_SPACE)
        for grid in grids:
            np.testing.assert_array_equal(
                grid.items_per_second, expected_grid.items_per_second
            )
        # /metrics merges per-worker series under fleet totals.
        assert 'worker="fleet"' in metrics
        assert 'worker="0"' in metrics and 'worker="1"' in metrics
        assert len(states) == 2
        assert all(state["alive"] for state in states)
        assert all(state["restarts"] == 0 for state in states)

    def test_sigkilled_worker_restarts_and_replays_inflight(self):
        kernels = all_kernels("proxyapps")
        queries = [GridQuery(k, PAPER_SPACE) for k in kernels]

        async def scenario():
            fleet = FleetExecutor(2, use_cache=False, max_wait_ms=50.0)
            await fleet.start()
            try:
                target = fleet.worker_for(queries[0])
                victim_pid = fleet.worker_states()[target]["pid"]
                # Kill first, then submit: the sends race the EOF, so
                # the supervisor must recover every one of them.
                os.kill(victim_pid, signal.SIGKILL)
                results = await asyncio.gather(
                    *(fleet.submit(q) for q in queries)
                )
                states = fleet.worker_states()
            finally:
                await fleet.stop(drain=True)
            return target, results, states

        target, results, states = run(scenario())

        assert states[target]["restarts"] >= 1
        assert states[target]["pid"] is not None
        direct = GpuSimulator("interval")
        for query, result in zip(queries, results):
            expected = direct.simulate_grid(query.kernel, query.space)
            np.testing.assert_array_equal(
                result.items_per_second, expected.items_per_second
            )

    def test_drain_answers_every_admitted_query_despite_midway_kill(self):
        kernels = all_kernels("proxyapps")
        queries = [GridQuery(k, PAPER_SPACE) for k in kernels] + [
            PointQuery(k, CONFIGS[i % len(CONFIGS)])
            for i, k in enumerate(kernels)
        ]

        async def scenario():
            fleet = FleetExecutor(2, use_cache=False, max_wait_ms=80.0)
            await fleet.start()
            tasks = [
                asyncio.ensure_future(fleet.submit(q)) for q in queries
            ]
            await asyncio.sleep(0)  # admit everything
            stop = asyncio.ensure_future(fleet.stop(drain=True))
            await asyncio.sleep(0.02)
            # SIGKILL the busiest worker while the drain is running.
            busiest = max(
                fleet.worker_states(),
                key=lambda state: state["inflight"],
            )
            if busiest["inflight"] and busiest["pid"]:
                os.kill(busiest["pid"], signal.SIGKILL)
            results = await asyncio.gather(*tasks)
            await stop
            return results

        results = run(scenario())

        assert len(results) == len(queries)
        direct = GpuSimulator("interval")
        for query, result in zip(queries, results):
            if isinstance(query, GridQuery):
                expected = direct.simulate_grid(query.kernel, query.space)
                np.testing.assert_array_equal(
                    result.items_per_second,
                    expected.items_per_second,
                )
            else:
                expected = direct.simulate(query.kernel, query.config)
                assert result.time_s == float(expected.time_s)
                assert result.items_per_second == float(
                    expected.items_per_second
                )


class TestPreferenceChains:
    def test_preference_starts_with_the_owner(self):
        ring = HashRing(4)
        for i in range(64):
            key = f"key-{i}"
            chain = ring.preference(key)
            assert chain[0] == ring.lookup(key)

    def test_preference_covers_every_worker_once(self):
        ring = HashRing(4)
        for i in range(64):
            chain = ring.preference(f"key-{i}")
            assert sorted(chain) == [0, 1, 2, 3]

    def test_single_worker_chain(self):
        assert HashRing(1).preference("anything") == [0]


class TestFleetDeadlines:
    def test_expired_deadline_refused_before_dispatch(self):
        from repro.service.batcher import DeadlineExceededError

        metrics = ServiceMetrics()

        async def scenario():
            fleet = FleetExecutor(2, use_cache=False, metrics=metrics)
            await fleet.start()
            try:
                with pytest.raises(DeadlineExceededError):
                    await fleet.submit(
                        PointQuery(kernel_by_name(KERNEL), W9100_LIKE),
                        deadline=(
                            asyncio.get_running_loop().time() - 1.0
                        ),
                    )
            finally:
                await fleet.stop(drain=False)

        run(scenario())
        assert metrics.deadline_exceeded.value() == 1


class TestFleetResilience:
    """Breakers, restart budgets, hedging — through real processes."""

    def test_worker_states_expose_breaker_and_budget(self):
        async def scenario():
            fleet = FleetExecutor(2, use_cache=False)
            await fleet.start()
            try:
                return fleet.worker_states()
            finally:
                await fleet.stop(drain=True)

        states = run(scenario())
        for state in states:
            assert state["breaker"] == "closed"
            budget = state["restart_budget"]
            assert budget["available"] >= 1
            assert budget["window_s"] > 0
            assert budget["next_free_s"] == 0.0

    def test_open_breaker_diverts_the_shard_to_its_neighbour(self):
        from repro.service.resilience import BreakerConfig

        kernel = kernel_by_name(KERNEL)
        query = GridQuery(kernel, PAPER_SPACE)
        metrics = ServiceMetrics()

        async def scenario():
            # One infra failure trips the breaker; a long cooldown
            # keeps it open for the rest of the test.
            fleet = FleetExecutor(
                2,
                use_cache=False,
                metrics=metrics,
                breaker=BreakerConfig(
                    failure_threshold=1,
                    window_s=60.0,
                    cooldown_s=60.0,
                ),
            )
            await fleet.start()
            try:
                target = fleet.worker_for(query)
                os.kill(fleet.worker_states()[target]["pid"],
                        signal.SIGKILL)
                # Wait for the supervisor to notice and restart.
                for _ in range(200):
                    state = fleet.worker_states()[target]
                    if state["restarts"] >= 1 and state["alive"]:
                        break
                    await asyncio.sleep(0.05)
                states = fleet.worker_states()
                result = await fleet.submit(query, timeout=30.0)
            finally:
                await fleet.stop(drain=True)
            return target, states, result

        target, states, result = run(scenario())

        assert states[target]["breaker"] == "open"
        expected = GpuSimulator("interval").simulate_grid(
            kernel_by_name(KERNEL), PAPER_SPACE
        )
        np.testing.assert_array_equal(
            result.items_per_second, expected.items_per_second
        )
        text = run(
            _render(metrics)
        )
        assert (
            'gpuscale_breaker_transitions_total{'
            f'shard="{target}", transition="closed->open"}} 1' in text
        )
        assert f'gpuscale_breaker_open{{shard="{target}"}} 1' in text

    def test_exhausted_restart_budget_fails_over_not_crashes(self):
        kernel = kernel_by_name(KERNEL)
        query = GridQuery(kernel, PAPER_SPACE)

        async def scenario():
            fleet = FleetExecutor(
                2,
                use_cache=False,
                restart_budget=1,
                restart_window_s=120.0,
            )
            await fleet.start()
            try:
                target = fleet.worker_for(query)
                # First kill consumes the only restart slot.
                os.kill(fleet.worker_states()[target]["pid"],
                        signal.SIGKILL)
                for _ in range(200):
                    state = fleet.worker_states()[target]
                    if state["restarts"] >= 1 and state["alive"]:
                        break
                    await asyncio.sleep(0.05)
                # Second kill exhausts it: the shard must divert to
                # its neighbour instead of dying or hanging.
                os.kill(fleet.worker_states()[target]["pid"],
                        signal.SIGKILL)
                await asyncio.sleep(0.3)
                result = await fleet.submit(query, timeout=30.0)
                states = fleet.worker_states()
            finally:
                await fleet.stop(drain=False)
            return target, states, result

        target, states, result = run(scenario())

        assert states[target]["restart_budget"]["available"] == 0
        assert states[target]["restart_budget"]["next_free_s"] > 0
        expected = GpuSimulator("interval").simulate_grid(
            kernel_by_name(KERNEL), PAPER_SPACE
        )
        np.testing.assert_array_equal(
            result.items_per_second, expected.items_per_second
        )

    def test_hedge_rescues_a_hanging_primary(self):
        from repro.service.chaos import ChaosConfig

        kernel = kernel_by_name(KERNEL)
        query = GridQuery(kernel, PAPER_SPACE)
        metrics = ServiceMetrics()

        # The shard owner is deterministic, so chaos can be aimed at
        # it before any process exists.
        target = FleetExecutor(2, use_cache=False).worker_for(query)

        async def scenario():
            fleet = FleetExecutor(
                2,
                use_cache=False,
                metrics=metrics,
                hedge_fraction=0.05,
                chaos=ChaosConfig(
                    seed=11,
                    hang=1.0,
                    hang_s=120.0,
                    workers=(target,),
                ),
            )
            await fleet.start()
            try:
                result = await fleet.submit(query, timeout=30.0)
            finally:
                await fleet.stop(drain=False)
            return result

        result = run(scenario())

        expected = GpuSimulator("interval").simulate_grid(
            kernel_by_name(KERNEL), PAPER_SPACE
        )
        np.testing.assert_array_equal(
            result.items_per_second, expected.items_per_second
        )
        text = run(_render(metrics))
        assert (
            f'gpuscale_hedges_total{{shard="{1 - target}", '
            'outcome="issued"} 1' in text
        )
        assert (
            f'gpuscale_hedges_total{{shard="{1 - target}", '
            'outcome="won"} 1' in text
        )


async def _render(metrics):
    return metrics.registry.render()
