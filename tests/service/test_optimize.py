"""``/v1/optimize`` and ``/v1/coschedule``: energy-optimal serving.

The acceptance invariants pinned here:

* every configuration ``/v1/optimize`` returns under a power cap has
  modelled board power at or below that cap (property-tested over
  caps and objectives),
* a repeated frontier/optimize request is answered from the energy
  cache with **zero** engine calls, and
* the fleet (``--workers 4``) answers ``/v1/optimize`` and
  ``/v1/coschedule`` byte-for-byte like the single-process server —
  selection runs router-side on arrays that cross the transport
  bit-exact.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.gpu.simulator import GpuSimulator
from repro.power import EnergyModel, Objective
from repro.power.dvfs_opt import frontier_points, select_optimum
from repro.service import schema, transport
from repro.service.batcher import (
    EnergyGridQuery,
    EnergyGridResult,
    GridQuery,
    MicroBatcher,
    PairGridQuery,
    PairGridResult,
    PointQuery,
)
from repro.service.loadgen import fetch
from repro.service.router import FleetExecutor
from repro.service.server import GpuScaleService, ServiceConfig
from repro.suites import kernel_by_name
from repro.sweep import reduced_space
from repro.sweep.space import PAPER_SPACE

REPO_ROOT = Path(__file__).resolve().parents[2]

KERNEL = "rodinia/bfs.kernel1"
PARTNER = "shoc/triad.triad"

SMALL_SPACE = {
    "cu_counts": [4, 16, 44],
    "engine_mhz": [300.0, 1000.0],
    "memory_mhz": [475.0, 1250.0],
}


def run(coro):
    return asyncio.run(coro)


def with_service(fn, **config_overrides):
    overrides = {"port": 0, "use_cache": False, **config_overrides}

    async def scenario():
        service = GpuScaleService(ServiceConfig(**overrides))
        await service.start()
        try:
            return await fn(service)
        finally:
            await service.shutdown(drain=True)

    return run(scenario())


def post(service, path, payload):
    return fetch(service.config.host, service.port, "POST", path, payload)


class TestSchema:
    def test_optimize_defaults(self):
        request = schema.parse_optimize({"kernel": KERNEL})
        assert request.kernel.full_name == KERNEL
        assert request.kernel_b is None
        assert request.objective is Objective.MIN_EDP
        assert request.power_cap_w is None
        assert request.frontier is False
        assert request.space is PAPER_SPACE

    def test_optimize_full_body(self):
        request = schema.parse_optimize({
            "kernel": KERNEL,
            "kernel_b": PARTNER,
            "objective": "min_energy",
            "power_cap_w": 150,
            "frontier": True,
            "space": SMALL_SPACE,
        })
        assert request.kernel_b.full_name == PARTNER
        assert request.objective is Objective.MIN_ENERGY
        assert request.power_cap_w == 150.0
        assert request.frontier is True
        assert request.space.shape == (3, 2, 2)

    def test_unknown_objective_rejected(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_optimize({"kernel": KERNEL, "objective": "warp"})
        assert err.value.code == "invalid_objective"

    @pytest.mark.parametrize("cap", [0, -5.0, "150", True, None])
    def test_bad_power_cap_rejected(self, cap):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_optimize({"kernel": KERNEL, "power_cap_w": cap})
        assert err.value.code == "invalid_power_cap"

    def test_non_boolean_frontier_rejected(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_optimize({"kernel": KERNEL, "frontier": 1})
        assert err.value.code == "invalid_flag"

    def test_unknown_pair_kernel_names_the_field(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_optimize({
                "kernel": KERNEL, "kernel_b": "no/such.kernel",
            })
        assert err.value.field == "kernel_b"

    def test_coschedule_requires_both_kernels(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_coschedule({"kernel_a": KERNEL})
        assert err.value.code == "missing_field"
        assert err.value.field == "kernel_b"

    def test_coschedule_rejects_config_and_space_together(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_coschedule({
                "kernel_a": KERNEL,
                "kernel_b": PARTNER,
                "config": {
                    "cu_count": 44, "engine_mhz": 1000,
                    "memory_mhz": 1250,
                },
                "space": SMALL_SPACE,
            })
        assert err.value.code == "invalid_shape"

    def test_coschedule_point_body(self):
        request = schema.parse_coschedule({
            "kernel_a": KERNEL,
            "kernel_b": PARTNER,
            "config": {
                "cu_count": 44, "engine_mhz": 1000,
                "memory_mhz": 1250,
            },
        })
        assert request.is_point
        assert request.config.cu_count == 44


class TestTransport:
    def test_energy_query_round_trips(self):
        kernel = kernel_by_name(KERNEL)
        query = EnergyGridQuery(kernel, reduced_space(3, 3, 3))
        decoded = transport.decode_query(transport.encode_query(query))
        assert isinstance(decoded, EnergyGridQuery)
        assert decoded.kernel.full_name == KERNEL
        assert decoded.space.shape == query.space.shape
        assert decoded == query

    def test_pair_query_round_trips(self):
        query = PairGridQuery(
            kernel_by_name(KERNEL),
            kernel_by_name(PARTNER),
            reduced_space(3, 3, 3),
        )
        decoded = transport.decode_query(transport.encode_query(query))
        assert isinstance(decoded, PairGridQuery)
        assert decoded == query

    def test_idle_pair_query_round_trips(self):
        query = PairGridQuery(
            kernel_by_name(KERNEL), None, reduced_space(3, 3, 3)
        )
        decoded = transport.decode_query(transport.encode_query(query))
        assert decoded.kernel_b is None
        assert decoded == query

    def test_energy_result_round_trips_bit_exact(self):
        kernel = kernel_by_name(KERNEL)
        space = reduced_space(3, 3, 3)
        surface = EnergyModel().surfaces(kernel, space)
        original = EnergyGridResult(
            kernel_name=KERNEL,
            time_s=np.asarray(surface.time_s),
            power_w=np.asarray(surface.power_w),
            energy_j=np.asarray(surface.energy_j),
            global_size=surface.global_size,
            from_cache=False,
        )
        decoded = transport.decode_result(
            transport.encode_result(original)
        )
        np.testing.assert_array_equal(decoded.time_s, original.time_s)
        np.testing.assert_array_equal(decoded.power_w, original.power_w)
        np.testing.assert_array_equal(
            decoded.energy_j, original.energy_j
        )
        assert decoded.global_size == original.global_size
        assert decoded.from_cache is False

    def test_pair_result_round_trips_bit_exact(self):
        from repro.coschedule import CoScheduleModel

        space = reduced_space(4, 4, 4)
        surface = CoScheduleModel().pair_surface(
            kernel_by_name(KERNEL), kernel_by_name(PARTNER), space
        )
        original = PairGridResult(
            kernel_a=surface.kernel_a,
            kernel_b=surface.kernel_b,
            time_a=np.asarray(surface.time_a),
            time_b=np.asarray(surface.time_b),
            solo_time_a=np.asarray(surface.solo_time_a),
            solo_time_b=np.asarray(surface.solo_time_b),
            makespan_s=np.asarray(surface.makespan_s),
            power_w=np.asarray(surface.power_w),
            energy_j=np.asarray(surface.energy_j),
            global_size_a=surface.global_size_a,
            global_size_b=surface.global_size_b,
        )
        decoded = transport.decode_result(
            transport.encode_result(original)
        )
        for field in ("time_a", "time_b", "solo_time_a", "solo_time_b",
                      "makespan_s", "power_w", "energy_j"):
            np.testing.assert_array_equal(
                getattr(decoded, field), getattr(original, field)
            )
        np.testing.assert_array_equal(decoded.stp, original.stp)
        np.testing.assert_array_equal(decoded.antt, original.antt)


class TestSharding:
    """Placement of the new query kinds, without spawning processes."""

    def test_energy_key_is_kernel_qualified(self):
        fleet = FleetExecutor(4, use_cache=False)
        space = reduced_space(3, 3, 3)
        first = EnergyGridQuery(kernel_by_name(KERNEL), space)
        second = EnergyGridQuery(kernel_by_name(PARTNER), space)
        assert fleet.shard_key(first) != fleet.shard_key(second)
        assert fleet.shard_key(first).startswith("e|")

    def test_pair_key_fingerprints_both_kernels(self):
        fleet = FleetExecutor(4, use_cache=False)
        space = reduced_space(3, 3, 3)
        a = kernel_by_name(KERNEL)
        b = kernel_by_name(PARTNER)
        ab = fleet.shard_key(PairGridQuery(a, b, space))
        ba = fleet.shard_key(PairGridQuery(b, a, space))
        idle = fleet.shard_key(PairGridQuery(a, None, space))
        assert ab.startswith("x|")
        assert len({ab, ba, idle}) == 3

    def test_keys_disjoint_from_grid_and_point(self):
        from repro.gpu import W9100_LIKE

        fleet = FleetExecutor(4, use_cache=False)
        space = reduced_space(3, 3, 3)
        kernel = kernel_by_name(KERNEL)
        keys = {
            fleet.shard_key(GridQuery(kernel, space)),
            fleet.shard_key(EnergyGridQuery(kernel, space)),
            fleet.shard_key(PairGridQuery(kernel, None, space)),
            fleet.shard_key(PointQuery(kernel, W9100_LIKE)),
        }
        assert len(keys) == 4


class _CountingSimulator:
    def __init__(self, inner):
        self._inner = inner
        self.engine_calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def simulate(self, kernel, config):
        self.engine_calls += 1
        return self._inner.simulate(kernel, config)

    def simulate_grid(self, kernel, space):
        self.engine_calls += 1
        return self._inner.simulate_grid(kernel, space)

    def simulate_study(self, pack, space):
        self.engine_calls += 1
        return self._inner.simulate_study(pack, space)


class TestEnergyCache:
    def test_repeat_energy_query_makes_zero_engine_calls(self, tmp_path):
        from repro.sweep.cache import SweepCache

        counting = _CountingSimulator(GpuSimulator("interval"))
        cache = SweepCache(tmp_path / "cache")
        query = EnergyGridQuery(
            kernel_by_name(KERNEL), reduced_space(3, 3, 3)
        )

        async def scenario():
            batcher = MicroBatcher(counting, cache=cache)
            await batcher.start()
            try:
                first = await batcher.submit(query)
                calls_after_first = counting.engine_calls
                second = await batcher.submit(query)
                return first, calls_after_first, second
            finally:
                await batcher.stop()

        first, calls_after_first, second = run(scenario())
        assert calls_after_first >= 1
        assert counting.engine_calls == calls_after_first
        assert not first.from_cache
        assert second.from_cache
        np.testing.assert_array_equal(second.time_s, first.time_s)
        np.testing.assert_array_equal(second.power_w, first.power_w)
        np.testing.assert_array_equal(second.energy_j, first.energy_j)

    def test_energy_cache_is_distinct_from_sweep_cache(self, tmp_path):
        """An energy surface and a plain sweep of the same (kernel,
        space) coexist: different prefixes, no collisions."""
        from repro.sweep.cache import SweepCache

        cache = SweepCache(tmp_path / "cache")
        kernel = kernel_by_name(KERNEL)
        space = reduced_space(3, 3, 3)

        async def scenario():
            batcher = MicroBatcher(
                GpuSimulator("interval"), cache=cache
            )
            await batcher.start()
            try:
                await batcher.submit(EnergyGridQuery(kernel, space))
                await batcher.submit(GridQuery(kernel, space))
                grid = await batcher.submit(GridQuery(kernel, space))
                energy = await batcher.submit(
                    EnergyGridQuery(kernel, space)
                )
                return grid, energy
            finally:
                await batcher.stop()

        grid, energy = run(scenario())
        assert grid.from_cache
        assert energy.from_cache
        names = sorted(
            p.name for p in (tmp_path / "cache").iterdir()
        )
        assert any(n.startswith("energy_") for n in names)
        assert any(n.startswith("sweep_") for n in names)


@pytest.fixture(scope="module")
def cap_surface():
    """One solo energy surface the cap property test selects over."""
    return EnergyModel().surfaces(
        kernel_by_name(KERNEL), reduced_space(2, 2, 2)
    )


class TestPowerCapProperty:
    @given(
        cap=st.floats(min_value=20.0, max_value=400.0),
        objective=st.sampled_from(list(Objective)),
    )
    @settings(max_examples=60, deadline=None)
    def test_selected_config_respects_cap(
        self, cap_surface, cap, objective
    ):
        try:
            c, e, m = select_optimum(
                cap_surface.time_s,
                cap_surface.energy_j,
                cap_surface.power_w,
                objective,
                power_cap_w=cap,
            )
        except AnalysisError:
            # Legal only when *no* grid point satisfies the cap.
            assert (cap_surface.power_w > cap).all()
            return
        assert cap_surface.power_w[c, e, m] <= cap

    @given(cap=st.floats(min_value=20.0, max_value=400.0))
    @settings(max_examples=30, deadline=None)
    def test_frontier_respects_cap(self, cap_surface, cap):
        try:
            points = frontier_points(
                cap_surface.space,
                cap_surface.time_s,
                cap_surface.energy_j,
                cap_surface.power_w,
                power_cap_w=cap,
            )
        except AnalysisError:
            assert (cap_surface.power_w > cap).all()
            return
        assert points
        for point in points:
            assert point.power_w <= cap


class TestHttpOptimize:
    def test_solo_optimize_under_cap(self):
        async def scenario(service):
            status, body = await post(service, "/v1/optimize", {
                "kernel": KERNEL,
                "objective": "min_energy",
                "power_cap_w": 150.0,
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["kernel"] == KERNEL
        assert payload["objective"] == "min_energy"
        assert payload["power_w"] <= 150.0
        assert payload["edp"] == pytest.approx(
            payload["time_s"] * payload["energy_j"]
        )
        assert set(payload["config"]) == {
            "cu_count", "engine_mhz", "memory_mhz",
        }

    def test_frontier_is_sorted_and_non_dominated(self):
        async def scenario(service):
            status, body = await post(service, "/v1/optimize", {
                "kernel": KERNEL,
                "frontier": True,
                "space": SMALL_SPACE,
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        frontier = payload["frontier"]
        assert frontier
        energies = [p["energy_j"] for p in frontier]
        times = [p["time_s"] for p in frontier]
        assert energies == sorted(energies)
        # Along the frontier, paying more energy must buy time.
        assert times == sorted(times, reverse=True)

    def test_pair_optimize_prices_the_makespan(self):
        async def scenario(service):
            status, body = await post(service, "/v1/optimize", {
                "kernel": KERNEL,
                "kernel_b": PARTNER,
                "objective": "max_perf",
                "space": SMALL_SPACE,
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["kernel_b"] == PARTNER
        assert payload["time_s"] > 0.0

    def test_zero_cap_is_schema_rejected(self):
        async def scenario(service):
            status, body = await post(service, "/v1/optimize", {
                "kernel": KERNEL, "power_cap_w": 0,
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 400
        assert payload["error"]["code"] == "invalid_power_cap"

    def test_cap_below_idle_power_is_unsatisfiable(self):
        async def scenario(service):
            status, body = await post(service, "/v1/optimize", {
                "kernel": KERNEL, "power_cap_w": 5.0,
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 400
        assert payload["error"]["code"] == "unsatisfiable_power_cap"
        assert payload["error"]["field"] == "power_cap_w"

    def test_invalid_objective_is_structured_400(self):
        async def scenario(service):
            status, body = await post(service, "/v1/optimize", {
                "kernel": KERNEL, "objective": "fastest",
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 400
        assert payload["error"]["code"] == "invalid_objective"

    def test_optimize_metrics_counter_increments(self):
        async def scenario(service):
            await post(service, "/v1/optimize", {
                "kernel": KERNEL, "space": SMALL_SPACE,
            })
            status, body = await fetch(
                service.config.host, service.port, "GET", "/metrics"
            )
            return status, body.decode()

        status, exposition = with_service(scenario)
        assert status == 200
        assert (
            'gpuscale_optimize_requests_total{objective="min_edp"} 1'
            in exposition
        )


class TestHttpCoschedule:
    def test_point_breakdown(self):
        async def scenario(service):
            status, body = await post(service, "/v1/coschedule", {
                "kernel_a": KERNEL,
                "kernel_b": PARTNER,
                "config": {
                    "cu_count": 32, "engine_mhz": 700.0,
                    "memory_mhz": 837.5,
                },
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["a"]["slowdown"] >= 1.0
        assert payload["b"]["slowdown"] >= 1.0
        assert payload["stp"] == pytest.approx(
            1.0 / payload["a"]["slowdown"]
            + 1.0 / payload["b"]["slowdown"]
        )
        assert payload["makespan_s"] == pytest.approx(
            max(payload["a"]["time_s"], payload["b"]["time_s"])
        )

    def test_surface_summary(self):
        async def scenario(service):
            status, body = await post(service, "/v1/coschedule", {
                "kernel_a": KERNEL,
                "kernel_b": PARTNER,
                "space": SMALL_SPACE,
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["stp"]["min"] <= payload["stp"]["max"]
        assert payload["antt"]["min"] >= 1.0
        assert payload["best_stp"]["stp"] == pytest.approx(
            payload["stp"]["max"]
        )

    def test_single_cu_point_is_structured_400(self):
        async def scenario(service):
            status, body = await post(service, "/v1/coschedule", {
                "kernel_a": KERNEL,
                "kernel_b": PARTNER,
                "config": {
                    "cu_count": 1, "engine_mhz": 1000.0,
                    "memory_mhz": 1250.0,
                },
            })
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 400

    def test_coschedule_metrics_counter_increments(self):
        async def scenario(service):
            await post(service, "/v1/coschedule", {
                "kernel_a": KERNEL,
                "kernel_b": PARTNER,
                "space": SMALL_SPACE,
            })
            status, body = await fetch(
                service.config.host, service.port, "GET", "/metrics"
            )
            return status, body.decode()

        status, exposition = with_service(scenario)
        assert status == 200
        assert "gpuscale_coschedule_pairs_total 1" in exposition


# ----------------------------------------------------------------------
# Fleet bit-identity
# ----------------------------------------------------------------------

OPTIMIZE_BODIES = [
    {"kernel": KERNEL, "objective": "min_energy", "space": SMALL_SPACE},
    {"kernel": KERNEL, "objective": "min_edp",
     "power_cap_w": 150.0, "space": SMALL_SPACE},
    {"kernel": PARTNER, "frontier": True, "space": SMALL_SPACE},
    {"kernel": KERNEL, "kernel_b": PARTNER, "objective": "max_perf",
     "space": SMALL_SPACE},
]

COSCHEDULE_BODIES = [
    {"kernel_a": KERNEL, "kernel_b": PARTNER, "space": SMALL_SPACE},
    {"kernel_a": PARTNER, "kernel_b": KERNEL,
     "config": {"cu_count": 24, "engine_mhz": 925.0,
                "memory_mhz": 950.0}},
]


def _spawn_server(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--no-cache", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    if not match:
        process.kill()
        process.wait(timeout=10)
        raise RuntimeError(f"server failed to start: {line!r}")
    return process, int(match.group(1))


def _kill(process):
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)


def _post_all(port, path_bodies):
    async def scenario():
        responses = await asyncio.gather(
            *(
                fetch("127.0.0.1", port, "POST", path, body)
                for path, body in path_bodies
            )
        )
        return [
            (status, json.loads(body)) for status, body in responses
        ]

    return asyncio.run(scenario())


@pytest.mark.slow
class TestFleetBitIdentity:
    def test_fleet_matches_single_process_exactly(self):
        """``--workers 4`` answers optimize/coschedule queries with
        payloads *equal* to the single-process server's — including
        every float, because selection happens router-side on arrays
        the transport moves bit-exact."""
        requests = (
            [("/v1/optimize", body) for body in OPTIMIZE_BODIES]
            + [("/v1/coschedule", body) for body in COSCHEDULE_BODIES]
        )
        fleet, fleet_port = _spawn_server("--workers", "4")
        try:
            single, single_port = _spawn_server()
            try:
                fleet_answers = _post_all(fleet_port, requests)
                single_answers = _post_all(single_port, requests)
            finally:
                _kill(single)
        finally:
            _kill(fleet)
        assert fleet_answers == single_answers
        for status, _ in fleet_answers:
            assert status == 200
