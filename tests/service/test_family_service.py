"""Families through the service path (PR 9 satellite).

The serialization invariant: a grid query on a non-default family —
named space, inline uarch, or `/v1/transfer` source sweep — answers
**bit-exactly** what the direct :class:`~repro.gpu.simulator.
GpuSimulator` computes, in the single-process server and in a
``--workers 2`` fleet alike; and the fleet's ``/v1/transfer`` response
is identical to the single-process one.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.gpu.simulator import GpuSimulator
from repro.gpu.uarch import family_names, get_family
from repro.service import schema
from repro.service.loadgen import fetch
from repro.service.server import GpuScaleService, ServiceConfig
from repro.suites import kernel_by_name
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

REPO_ROOT = Path(__file__).resolve().parents[2]

KERNEL = "rodinia/bfs.kernel1"

TRANSFER_BODY = {
    "kernel": KERNEL,
    "source_family": "hawaii",
    "target_family": "kaveri",
}


def run(coro):
    return asyncio.run(coro)


def with_service(fn, **config_overrides):
    overrides = {"port": 0, "use_cache": False, **config_overrides}

    async def scenario():
        service = GpuScaleService(ServiceConfig(**overrides))
        await service.start()
        try:
            return await fn(service)
        finally:
            await service.shutdown(drain=True)

    return run(scenario())


def post(service, path, payload):
    return fetch(service.config.host, service.port, "POST", path, payload)


def get(service, path):
    return fetch(service.config.host, service.port, "GET", path)


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------


class TestSchema:
    def test_family_name_resolves_canonical_space(self):
        space = schema.parse_space("kaveri")
        assert space == get_family("kaveri").space

    def test_paper_still_works(self):
        assert schema.parse_space("paper") == PAPER_SPACE

    def test_unknown_family_structured_400(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_space("vega")
        assert err.value.code == "unknown_family"
        assert "kaveri" in err.value.message

    def test_axes_with_family_uarch(self):
        space = schema.parse_space({
            "cu_counts": [2, 4],
            "engine_mhz": [500.0],
            "memory_mhz": [600.0],
            "uarch": "maxwell",
        })
        assert space.uarch == get_family("maxwell").uarch

    def test_axes_with_inline_uarch_values(self):
        material = get_family("fiji").uarch.to_dict()
        space = schema.parse_space({
            "cu_counts": [8, 16],
            "engine_mhz": [300.0],
            "memory_mhz": [125.0],
            "uarch": material,
        })
        assert space.uarch == get_family("fiji").uarch

    def test_axes_with_bad_uarch_rejected(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_space({
                "cu_counts": [2],
                "engine_mhz": [500.0],
                "memory_mhz": [600.0],
                "uarch": {"no_such_field": 3},
            })
        assert err.value.code == "invalid_space"

    def test_transfer_requires_both_families(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_transfer({"kernel": KERNEL})
        assert err.value.code == "missing_field"

    def test_transfer_rejects_same_family(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_transfer({
                "kernel": KERNEL,
                "source_family": "hawaii",
                "target_family": "hawaii",
            })
        assert err.value.code == "invalid_transfer"

    def test_transfer_rejects_unknown_family(self):
        with pytest.raises(schema.RequestError) as err:
            schema.parse_transfer({
                "kernel": KERNEL,
                "source_family": "hawaii",
                "target_family": "vega",
            })
        assert err.value.code == "unknown_family"
        assert err.value.field == "target_family"

    def test_transfer_parses(self):
        request = schema.parse_transfer(dict(TRANSFER_BODY))
        assert request.source_family == "hawaii"
        assert request.target_family == "kaveri"
        assert request.kernel.full_name == KERNEL


# ----------------------------------------------------------------------
# Single-process server
# ----------------------------------------------------------------------


class TestSingleProcess:
    def test_healthz_lists_families(self):
        async def scenario(service):
            status, body = await get(service, "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["families"] == list(family_names())

        with_service(scenario)

    def test_families_endpoint(self):
        async def scenario(service):
            status, body = await get(service, "/v1/families")
            assert status == 200
            families = json.loads(body)["families"]
            assert [f["name"] for f in families] == list(family_names())
            for entry in families:
                assert entry["peak_gflops"] > 0
                assert entry["space_size"] >= 100

        with_service(scenario)

    @pytest.mark.parametrize("name", ["kaveri", "maxwell", "fiji"])
    def test_family_grid_bit_exact_vs_simulator(self, name):
        """Named-family grids answer the direct simulator's floats."""
        family = get_family(name)
        space = ConfigurationSpace(
            cu_counts=family.space.cu_counts[:2],
            engine_mhz=family.space.engine_mhz[:2],
            memory_mhz=family.space.memory_mhz[:2],
            uarch=family.uarch,
        )
        expected = GpuSimulator().simulate_grid(
            kernel_by_name(KERNEL), space
        ).items_per_second

        async def scenario(service):
            status, body = await post(service, "/v1/simulate", {
                "kernel": KERNEL,
                "space": {
                    "cu_counts": list(space.cu_counts),
                    "engine_mhz": list(space.engine_mhz),
                    "memory_mhz": list(space.memory_mhz),
                    "uarch": name,
                },
            })
            assert status == 200
            payload = json.loads(body)
            assert payload["items_per_second"] == expected.tolist()

        with_service(scenario)

    def test_canonical_family_space_by_name(self):
        family = get_family("kaveri")
        expected = GpuSimulator().simulate_grid(
            kernel_by_name(KERNEL), family.space
        ).items_per_second

        async def scenario(service):
            status, body = await post(service, "/v1/simulate", {
                "kernel": KERNEL, "space": "kaveri",
            })
            assert status == 200
            payload = json.loads(body)
            assert payload["items_per_second"] == expected.tolist()
            assert payload["space"]["cu_counts"] == list(
                family.space.cu_counts
            )

        with_service(scenario)

    def test_unknown_family_answers_400(self):
        async def scenario(service):
            status, body = await post(service, "/v1/simulate", {
                "kernel": KERNEL, "space": "vega",
            })
            assert status == 400
            assert json.loads(body)["error"]["code"] == "unknown_family"

        with_service(scenario)

    def test_transfer_endpoint_predicts_class(self):
        async def scenario(service):
            status, body = await post(
                service, "/v1/transfer", dict(TRANSFER_BODY)
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["source_family"] == "hawaii"
            assert payload["target_family"] == "kaveri"
            assert payload["category"]
            assert len(payload["neighbours"]) == 3
            assert payload["transfer_error"] >= 0.0
            shape = np.asarray(payload["items_per_second"]).shape
            assert shape == get_family("kaveri").space.shape
            assert payload["fidelity"] == "exact"

        with_service(scenario)

    def test_transfer_same_family_400(self):
        async def scenario(service):
            status, body = await post(service, "/v1/transfer", {
                "kernel": KERNEL,
                "source_family": "hawaii",
                "target_family": "hawaii",
            })
            assert status == 400
            assert json.loads(body)["error"]["code"] == (
                "invalid_transfer"
            )

        with_service(scenario)

    def test_metrics_count_families_and_transfers(self):
        async def scenario(service):
            await post(service, "/v1/simulate", {
                "kernel": KERNEL, "space": "kaveri",
            })
            await post(
                service, "/v1/transfer", dict(TRANSFER_BODY)
            )
            status, body = await get(service, "/metrics")
            assert status == 200
            if isinstance(body, bytes):
                body = body.decode()
            assert (
                'gpuscale_family_queries_total{family="kaveri"}'
            ) in body
            # The transfer's source sweep runs on the hawaii grid.
            assert (
                'gpuscale_family_queries_total{family="hawaii"}'
            ) in body
            assert (
                'gpuscale_transfer_requests_total'
                '{source_family="hawaii", target_family="kaveri"} 1'
            ) in body

        with_service(scenario)


# ----------------------------------------------------------------------
# Fleet agreement
# ----------------------------------------------------------------------


def _spawn_server(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--no-cache", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    if not match:
        process.kill()
        process.wait(timeout=10)
        raise AssertionError(f"no listen line, got {line!r}")
    return process, int(match.group(1))


def _kill(process):
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)


@pytest.fixture(scope="module")
def fleet_port():
    process, port = _spawn_server("--workers", "2")
    try:
        yield port
    finally:
        _kill(process)


@pytest.fixture(scope="module")
def single_port():
    process, port = _spawn_server()
    try:
        yield port
    finally:
        _kill(process)


def _post_one(port, path, body):
    async def scenario():
        status, payload = await fetch(
            "127.0.0.1", port, "POST", path, body
        )
        return status, json.loads(payload)

    return run(scenario())


class TestFleetAgreement:
    def test_family_grid_fleet_vs_single_vs_simulator(
        self, fleet_port, single_port
    ):
        family = get_family("maxwell")
        body = {"kernel": KERNEL, "space": "maxwell"}
        status_f, fleet = _post_one(fleet_port, "/v1/simulate", body)
        status_s, single = _post_one(single_port, "/v1/simulate", body)
        assert status_f == status_s == 200
        assert fleet["items_per_second"] == single["items_per_second"]
        expected = GpuSimulator().simulate_grid(
            kernel_by_name(KERNEL), family.space
        ).items_per_second
        assert fleet["items_per_second"] == expected.tolist()

    def test_transfer_fleet_vs_single_identical(
        self, fleet_port, single_port
    ):
        status_f, fleet = _post_one(
            fleet_port, "/v1/transfer", dict(TRANSFER_BODY)
        )
        status_s, single = _post_one(
            single_port, "/v1/transfer", dict(TRANSFER_BODY)
        )
        assert status_f == status_s == 200
        # from_cache may differ between servers; everything the
        # prediction itself carries must be identical, bit for bit.
        for key in (
            "kernel", "source_family", "target_family", "category",
            "behaviours", "neighbours", "neighbour_distances",
            "transfer_error", "target_space", "items_per_second",
        ):
            assert fleet[key] == single[key], key
