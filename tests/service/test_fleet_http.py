"""``gpuscale serve --workers N`` end to end, as real processes.

The acceptance invariant for the fleet: whatever mix of point and
grid queries concurrent clients throw at it, every response is
**byte-for-byte** the one the single-process server gives and
**bit-for-bit** the direct :class:`~repro.gpu.simulator.GpuSimulator`
answer — the process boundary, the hash router, and the shared-memory
result path are invisible except in ``/healthz`` and ``/metrics``.
A Hypothesis-driven mixed-client property pins that three-way
agreement; the lifecycle tests pin worker restart and the SIGTERM
drain (every admitted request answered before exit, even with one
worker SIGKILLed mid-drain).
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpu import HardwareConfig
from repro.gpu.simulator import GpuSimulator
from repro.service.loadgen import encode_request, fetch, read_response
from repro.suites import kernel_by_name
from repro.sweep.space import ConfigurationSpace

REPO_ROOT = Path(__file__).resolve().parents[2]

KERNELS = [
    "rodinia/bfs.kernel1",
    "shoc/triad.triad",
    "rodinia/nw.needle_1",
    "proxyapps/lulesh.calc_force_elems",
    "proxyapps/comd.eam_force",
    "proxyapps/minife.spmv_crs",
]

CONFIGS = [
    {"cu_count": 44, "engine_mhz": 1000.0, "memory_mhz": 1250.0},
    {"cu_count": 8, "engine_mhz": 600.0, "memory_mhz": 475.0},
    {"cu_count": 24, "engine_mhz": 925.0, "memory_mhz": 950.0},
]

SMALL_SPACE = {
    "cu_counts": [4, 16, 44],
    "engine_mhz": [300.0, 1000.0],
    "memory_mhz": [475.0, 1250.0],
}


def _spawn_server(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--no-cache", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    if not match:
        process.kill()
        process.wait(timeout=10)
        raise AssertionError(f"no listen line, got {line!r}")
    return process, int(match.group(1)), line


def _kill(process):
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)


@pytest.fixture(scope="module")
def fleet_server():
    """One ``--workers 2`` fleet shared by the comparison tests."""
    process, port, line = _spawn_server("--workers", "2")
    try:
        yield process, port, line
    finally:
        _kill(process)


@pytest.fixture(scope="module")
def single_server():
    """The single-process reference the fleet must agree with."""
    process, port, line = _spawn_server()
    try:
        yield process, port, line
    finally:
        _kill(process)


def _post_all(port, bodies):
    """POST every body concurrently; returns (status, payload) pairs."""

    async def scenario():
        responses = await asyncio.gather(
            *(
                fetch("127.0.0.1", port, "POST", "/v1/simulate", body)
                for body in bodies
            )
        )
        return [
            (status, json.loads(body)) for status, body in responses
        ]

    return asyncio.run(scenario())


def _plan_to_bodies(plan):
    return [
        {"kernel": KERNELS[k], "space": SMALL_SPACE}
        if is_grid
        else {"kernel": KERNELS[k], "config": CONFIGS[c]}
        for is_grid, k, c in plan
    ]


class TestFleetTopology:
    def test_ready_line_announces_workers(self, fleet_server):
        _, _, line = fleet_server
        assert "workers=2" in line

    def test_healthz_lists_live_workers(self, fleet_server):
        _, port, _ = fleet_server
        status, body = asyncio.run(
            fetch("127.0.0.1", port, "GET", "/healthz")
        )
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        workers = payload["workers"]
        assert [w["worker"] for w in workers] == [0, 1]
        assert all(w["alive"] for w in workers)
        assert all(isinstance(w["pid"], int) for w in workers)

    def test_metrics_aggregate_across_workers(self, fleet_server):
        _, port, _ = fleet_server
        _post_all(port, [{"kernel": KERNELS[0], "config": CONFIGS[0]}])
        status, body = asyncio.run(
            fetch("127.0.0.1", port, "GET", "/metrics")
        )
        text = body.decode()
        assert status == 200
        assert 'worker="fleet"' in text
        assert 'worker="0"' in text and 'worker="1"' in text
        # HELP/TYPE appear once per metric, not once per worker.
        assert text.count("# TYPE gpuscale_batches_total counter") == 1


class TestFleetBitExactness:
    @given(
        plan=st.lists(
            st.tuples(
                st.booleans(),  # grid query?
                st.integers(min_value=0, max_value=len(KERNELS) - 1),
                st.integers(min_value=0, max_value=len(CONFIGS) - 1),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_fleet_matches_single_and_direct(
        self, plan, fleet_server, single_server
    ):
        """Mixed concurrent clients: fleet == single process == direct
        simulator, full JSON payloads compared for equality."""
        bodies = _plan_to_bodies(plan)
        fleet_responses = _post_all(fleet_server[1], bodies)
        single_responses = _post_all(single_server[1], bodies)
        assert fleet_responses == single_responses

        direct = GpuSimulator("interval")
        space = ConfigurationSpace.from_dict(dict(SMALL_SPACE))
        for (is_grid, k, c), (status, payload) in zip(
            plan, fleet_responses
        ):
            assert status == 200
            kernel = kernel_by_name(KERNELS[k])
            if is_grid:
                expected = direct.simulate_grid(kernel, space)
                np.testing.assert_array_equal(
                    np.asarray(payload["items_per_second"]),
                    expected.items_per_second,
                )
            else:
                config = HardwareConfig(**CONFIGS[c])
                expected = direct.simulate(kernel, config)
                assert payload["time_s"] == float(expected.time_s)
                assert payload["items_per_second"] == float(
                    expected.items_per_second
                )

    def test_paper_grid_is_bit_exact_through_the_fleet(
        self, fleet_server
    ):
        from repro.sweep.space import PAPER_SPACE

        _, port, _ = fleet_server
        ((status, payload),) = _post_all(
            port, [{"kernel": KERNELS[0], "space": "paper"}]
        )
        assert status == 200
        expected = GpuSimulator("interval").simulate_grid(
            kernel_by_name(KERNELS[0]), PAPER_SPACE
        )
        np.testing.assert_array_equal(
            np.asarray(payload["items_per_second"]),
            expected.items_per_second,
        )


class TestWorkerRecovery:
    def test_sigkilled_worker_is_replaced_and_service_answers(
        self, fleet_server
    ):
        process, port, _ = fleet_server
        _status, body = asyncio.run(
            fetch("127.0.0.1", port, "GET", "/healthz")
        )
        victim = json.loads(body)["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)

        # A query issued immediately is recovered by resubmission.
        ((status, payload),) = _post_all(
            port, [{"kernel": KERNELS[0], "space": SMALL_SPACE}]
        )
        assert status == 200
        expected = GpuSimulator("interval").simulate_grid(
            kernel_by_name(KERNELS[0]),
            ConfigurationSpace.from_dict(dict(SMALL_SPACE)),
        )
        np.testing.assert_array_equal(
            np.asarray(payload["items_per_second"]),
            expected.items_per_second,
        )

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _status, body = asyncio.run(
                fetch("127.0.0.1", port, "GET", "/healthz")
            )
            workers = json.loads(body)["workers"]
            if (
                all(w["alive"] for w in workers)
                and sum(w["restarts"] for w in workers) >= 1
            ):
                break
            time.sleep(0.2)
        else:
            raise AssertionError(
                f"worker never came back healthy: {workers}"
            )
        assert workers[0]["pid"] != victim
        assert process.poll() is None  # the server itself never died


async def _fire_and_drain(port, process, bodies, kill_worker_pid=None):
    """Put *bodies* in flight, SIGTERM the server, read every answer."""
    connections = []
    for body in bodies:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(encode_request("/v1/simulate", body))
        await writer.drain()
        connections.append((reader, writer))
    await asyncio.sleep(0.2)  # let the server admit them
    process.send_signal(signal.SIGTERM)
    if kill_worker_pid is not None:
        await asyncio.sleep(0.05)
        os.kill(kill_worker_pid, signal.SIGKILL)
    responses = []
    for reader, writer in connections:
        responses.append(await read_response(reader))
        writer.close()
    return responses


class TestSigtermDrain:
    def _run_drain(self, kill_one_worker):
        process, port, _ = _spawn_server(
            "--workers", "2", "--max-wait-ms", "50",
        )
        try:
            victim = None
            if kill_one_worker:
                _status, body = asyncio.run(
                    fetch("127.0.0.1", port, "GET", "/healthz")
                )
                victim = json.loads(body)["workers"][0]["pid"]
            bodies = [
                {"kernel": name, "space": "paper"} for name in KERNELS
            ] + [
                {"kernel": name, "config": CONFIGS[i % len(CONFIGS)]}
                for i, name in enumerate(KERNELS * 3)
            ]
            responses = asyncio.run(
                _fire_and_drain(
                    port, process, bodies, kill_worker_pid=victim
                )
            )
            stdout, _ = process.communicate(timeout=60)
        finally:
            _kill(process)

        assert process.returncode == 0
        assert "drained cleanly" in stdout
        # Every request written before SIGTERM got a real answer: an
        # admitted one its result, a not-yet-admitted one a 503 —
        # never a dropped connection.
        assert len(responses) == len(bodies)
        statuses = {status for status, _ in responses}
        assert statuses <= {200, 503}
        assert 200 in statuses
        direct = GpuSimulator("interval")
        for body, (status, raw) in zip(bodies, responses):
            if status != 200:
                continue
            payload = json.loads(raw)
            kernel = kernel_by_name(body["kernel"])
            if "space" in body:
                from repro.sweep.space import PAPER_SPACE

                expected = direct.simulate_grid(kernel, PAPER_SPACE)
                np.testing.assert_array_equal(
                    np.asarray(payload["items_per_second"]),
                    expected.items_per_second,
                )
            else:
                expected = direct.simulate(
                    kernel, HardwareConfig(**body["config"])
                )
                assert payload["items_per_second"] == float(
                    expected.items_per_second
                )

    def test_drain_answers_every_inflight_request(self):
        self._run_drain(kill_one_worker=False)

    def test_drain_survives_a_worker_killed_midway(self):
        self._run_drain(kill_one_worker=True)
