"""End-to-end HTTP tests: real sockets, real batcher, real engines."""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.gpu import W9100_LIKE
from repro.gpu.simulator import GpuSimulator
from repro.service.batcher import (
    OverloadError,
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.service.loadgen import encode_request, fetch, read_response
from repro.service.server import GpuScaleService, ServiceConfig

KERNEL = "rodinia/bfs.kernel1"
POINT_BODY = {
    "kernel": KERNEL,
    "config": {"cu_count": 44, "engine_mhz": 1000, "memory_mhz": 1250},
}
SMALL_SPACE_BODY = {
    "cu_counts": [4, 16, 44],
    "engine_mhz": [300.0, 1000.0],
    "memory_mhz": [475.0, 1250.0],
}


def run(coro):
    return asyncio.run(coro)


def with_service(fn, **config_overrides):
    """Start a service on an ephemeral port, run *fn(service)*, drain."""
    overrides = {"port": 0, "use_cache": False, **config_overrides}

    async def scenario():
        service = GpuScaleService(ServiceConfig(**overrides))
        await service.start()
        try:
            return await fn(service)
        finally:
            await service.shutdown(drain=True)

    return run(scenario())


def post(service, path, payload):
    return fetch(service.config.host, service.port, "POST", path, payload)


def get(service, path):
    return fetch(service.config.host, service.port, "GET", path)


class TestHealthAndMetadata:
    def test_healthz_reports_ok(self):
        async def scenario(service):
            status, body = await get(service, "/healthz")
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["engine"] == "interval"
        assert payload["queue_depth"] == 0

    def test_engines_lists_the_registry(self):
        from repro.gpu.engine import engine_names

        async def scenario(service):
            status, body = await get(service, "/v1/engines")
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        names = {entry["name"] for entry in payload["engines"]}
        assert names == set(engine_names())
        for entry in payload["engines"]:
            assert set(entry["capabilities"]) == {
                "point", "grid", "study",
            }

    def test_metrics_exposition(self):
        async def scenario(service):
            await post(service, "/v1/simulate", POINT_BODY)
            status, body = await get(service, "/metrics")
            return status, body.decode()

        status, text = with_service(scenario)
        assert status == 200
        assert "# TYPE gpuscale_requests_total counter" in text
        assert (
            'gpuscale_requests_total{endpoint="/v1/simulate", '
            'status="200"} 1' in text
        )
        assert "gpuscale_batches_total 1" in text


class TestSimulate:
    def test_point_is_bit_exact_vs_direct(self):
        async def scenario(service):
            status, body = await post(
                service, "/v1/simulate", POINT_BODY
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        from repro.suites import kernel_by_name

        expected = GpuSimulator("interval").simulate(
            kernel_by_name(KERNEL), W9100_LIKE
        )
        assert payload["kernel"] == KERNEL
        assert payload["time_s"] == float(expected.time_s)
        assert payload["items_per_second"] == float(
            expected.items_per_second
        )

    def test_grid_is_bit_exact_vs_direct(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {"kernel": KERNEL, "space": SMALL_SPACE_BODY},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        from repro.suites import kernel_by_name
        from repro.sweep.space import ConfigurationSpace

        space = ConfigurationSpace.from_dict(dict(SMALL_SPACE_BODY))
        expected = GpuSimulator("interval").simulate_grid(
            kernel_by_name(KERNEL), space
        )
        np.testing.assert_array_equal(
            np.asarray(payload["items_per_second"]),
            expected.items_per_second,
        )
        assert payload["space"]["cu_counts"] == [4, 16, 44]
        assert payload["from_cache"] is False

    def test_inline_kernel_definition(self):
        from repro.suites import kernel_by_name

        inline = kernel_by_name(KERNEL).to_dict()

        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {"kernel": inline, "config": POINT_BODY["config"]},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["kernel"] == KERNEL

    def test_repeat_grid_hits_cache(self, tmp_path):
        body = {"kernel": KERNEL, "space": SMALL_SPACE_BODY}

        async def scenario(service):
            _, first = await post(service, "/v1/simulate", body)
            _, second = await post(service, "/v1/simulate", body)
            _, metrics = await get(service, "/metrics")
            return (
                json.loads(first), json.loads(second),
                metrics.decode(),
            )

        first, second, metrics = with_service(
            scenario, use_cache=True, cache_dir=str(tmp_path / "c"),
        )
        assert first["from_cache"] is False
        assert second["from_cache"] is True
        assert first["items_per_second"] == second["items_per_second"]
        assert first["time_s"] == second["time_s"]
        assert 'gpuscale_cache_events_total{outcome="hit"} 1' in metrics
        assert (
            'gpuscale_cache_events_total{outcome="store"} 1' in metrics
        )


class TestClassifyAndWhatIf:
    def test_classify_matches_direct_pipeline(self):
        async def scenario(service):
            status, body = await post(
                service, "/v1/classify", {"kernel": KERNEL}
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        from repro.suites import kernel_by_name
        from repro.sweep import SweepRunner
        from repro.sweep.space import PAPER_SPACE
        from repro.taxonomy.classifier import classify

        dataset = SweepRunner().run(
            [kernel_by_name(KERNEL)], PAPER_SPACE
        )
        label = classify(dataset).labels[0]
        assert payload["kernel"] == KERNEL
        assert payload["category"] == label.category.value
        assert payload["behaviours"]["cu"] == label.cu_behaviour.value
        assert payload["explanation"]

    def test_whatif_ranks_scenarios(self):
        from repro.predict.what_if import STANDARD_SCENARIOS

        async def scenario(service):
            status, body = await post(
                service, "/v1/whatif", {"kernel": KERNEL}
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert len(payload["scenarios"]) == len(STANDARD_SCENARIOS)
        speedups = [row["speedup"] for row in payload["scenarios"]]
        assert speedups == sorted(speedups, reverse=True)
        assert payload["baseline_items_per_second"] > 0
        for row in payload["scenarios"]:
            assert row["speedup"] == (
                row["optimised_items_per_second"]
                / payload["baseline_items_per_second"]
            )


class TestValidationErrors:
    @pytest.mark.parametrize(
        "body, code",
        [
            ({"kernel": "nope/missing.k", "space": "paper"},
             "unknown_kernel"),
            ({"kernel": KERNEL}, "invalid_shape"),
            ({"kernel": KERNEL, "space": "paper", "version": 9},
             "unsupported_version"),
            ({"kernel": KERNEL, "space": "huge"}, "unknown_family"),
        ],
    )
    def test_simulate_400s(self, body, code):
        async def scenario(service):
            status, response = await post(
                service, "/v1/simulate", body
            )
            return status, json.loads(response)

        status, payload = with_service(scenario)
        assert status == 400
        assert payload["error"]["code"] == code

    def test_invalid_json_body(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                service.config.host, service.port
            )
            try:
                writer.write(
                    b"POST /v1/simulate HTTP/1.1\r\n"
                    b"Content-Length: 9\r\n\r\nnot json!"
                )
                await writer.drain()
                return await read_response(reader)
            finally:
                writer.close()

        status, body = with_service(scenario)
        assert status == 400
        assert json.loads(body)["error"]["code"] == "invalid_json"

    def test_unknown_path_404(self):
        async def scenario(service):
            return await get(service, "/v2/simulate")

        status, body = with_service(scenario)
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_wrong_method_405(self):
        async def scenario(service):
            return await get(service, "/v1/simulate")

        status, body = with_service(scenario)
        assert status == 405
        assert (
            json.loads(body)["error"]["code"] == "method_not_allowed"
        )

    def test_unsupported_query_shape_400(self):
        # The predictor engine is grid-only: a point query against it
        # is a client error, not a server fault.
        async def scenario(service):
            status, body = await post(
                service, "/v1/simulate", POINT_BODY
            )
            return status, json.loads(body)

        status, payload = with_service(scenario, engine="predictor")
        assert status == 400
        assert payload["error"]["code"] == "unsupported_query"

    def test_oversized_body_413(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                service.config.host, service.port
            )
            try:
                writer.write(
                    b"POST /v1/simulate HTTP/1.1\r\n"
                    b"Content-Length: 99999999\r\n\r\n"
                )
                await writer.drain()
                return await read_response(reader)
            finally:
                writer.close()

        status, body = with_service(scenario)
        assert status == 413
        assert json.loads(body)["error"]["code"] == "body_too_large"

    def test_malformed_request_line_400(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                service.config.host, service.port
            )
            try:
                writer.write(b"WHAT\r\n\r\n")
                await writer.drain()
                return await read_response(reader)
            finally:
                writer.close()

        status, body = with_service(scenario)
        assert status == 400
        assert (
            json.loads(body)["error"]["code"] == "malformed_request"
        )


class TestOverloadMapping:
    """Batcher backpressure exceptions map to the documented statuses."""

    @pytest.mark.parametrize(
        "exc, status, code",
        [
            (OverloadError("full"), 429, "overloaded"),
            (ServiceTimeoutError("slow"), 503, "timeout"),
            (ServiceClosedError("bye"), 503, "draining"),
        ],
    )
    def test_batcher_rejections_map_to_statuses(
        self, exc, status, code
    ):
        async def scenario(service):
            async def rejecting_submit(query, timeout=None, deadline=None):
                raise exc

            service.batcher.submit = rejecting_submit
            return await post(service, "/v1/simulate", POINT_BODY)

        got_status, body = with_service(scenario)
        assert got_status == status
        assert json.loads(body)["error"]["code"] == code

    def test_429_carries_retry_after(self):
        async def scenario(service):
            async def rejecting_submit(query, timeout=None, deadline=None):
                raise OverloadError("full")

            service.batcher.submit = rejecting_submit
            reader, writer = await asyncio.open_connection(
                service.config.host, service.port
            )
            try:
                writer.write(
                    encode_request("/v1/simulate", POINT_BODY)
                )
                await writer.drain()
                status_line = await reader.readline()
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = (
                        line.decode().partition(":")
                    )
                    headers[name.strip().lower()] = value.strip()
                return int(status_line.split()[1]), headers
            finally:
                writer.close()

        status, headers = with_service(scenario)
        assert status == 429
        assert headers["retry-after"] == "1"

    def test_draining_server_rejects_posts(self):
        async def scenario(service):
            service._draining = True
            status, body = await post(
                service, "/v1/simulate", POINT_BODY
            )
            health_status, health = await get(service, "/healthz")
            service._draining = False
            return status, json.loads(body), json.loads(health)

        status, payload, health = with_service(scenario)
        assert status == 503
        assert payload["error"]["code"] == "draining"
        assert health["status"] == "draining"


class GatedPointSimulator:
    """Point engine that blocks in the worker thread until released."""

    supports_point = True
    supports_grid = False
    supports_study = False
    engine_name = "interval"

    def __init__(self):
        self._inner = GpuSimulator("interval")
        self.gate = threading.Event()

    def simulate(self, kernel, config):
        assert self.gate.wait(timeout=30), "test gate never opened"
        return self._inner.simulate(kernel, config)


class TestRetryAfterEstimation:
    """The 429 ``Retry-After`` is queue depth over drain rate — an
    estimate the service computes, never a hard-coded constant."""

    def test_retry_after_tracks_queue_depth_and_drain_rate(self):
        simulator = GatedPointSimulator()

        async def scenario():
            service = GpuScaleService(
                ServiceConfig(
                    port=0, use_cache=False,
                    max_batch=1, max_wait_ms=0.5, queue_limit=4,
                ),
                simulator=simulator,
            )
            await service.start()
            host = service.config.host
            try:
                # Prime the drain estimator with a known history:
                # 5 queries answered over 10 s = 0.5 queries/s.
                estimator = service.batcher._drain_rate
                estimator.record(0, 0.0)
                estimator.record(5, 10.0)
                connections = []
                for index in range(5):
                    reader, writer = await asyncio.open_connection(
                        host, service.port
                    )
                    writer.write(
                        encode_request("/v1/simulate", POINT_BODY)
                    )
                    await writer.drain()
                    connections.append((reader, writer))
                    if index == 0:
                        # Let the head query enter the (gated) engine
                        # so the rest land in the admission queue.
                        await asyncio.sleep(0.15)
                await asyncio.sleep(0.15)
                reader, writer = await asyncio.open_connection(
                    host, service.port
                )
                writer.write(encode_request("/v1/simulate", POINT_BODY))
                await writer.drain()
                status_line = await reader.readline()
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0))
                if length:
                    await reader.readexactly(length)
                writer.close()
                simulator.gate.set()
                for queued_reader, queued_writer in connections:
                    await read_response(queued_reader)
                    queued_writer.close()
                return int(status_line.split()[1]), headers
            finally:
                simulator.gate.set()
                await service.shutdown(drain=True)

        status, headers = asyncio.run(scenario())
        assert status == 429
        # Queue depth 4 / 0.5 answered per second = 8 seconds — the
        # live estimate, not the cold-start floor of 1.
        assert headers["retry-after"] == "8"


class TestConnectionBehaviour:
    def test_keep_alive_serves_sequential_requests(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                service.config.host, service.port
            )
            try:
                statuses = []
                for _ in range(3):
                    writer.write(
                        encode_request("/v1/simulate", POINT_BODY)
                    )
                    await writer.drain()
                    status, body = await read_response(reader)
                    statuses.append(status)
                return statuses
            finally:
                writer.close()

        assert with_service(scenario) == [200, 200, 200]

    def test_connection_close_honoured(self):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                service.config.host, service.port
            )
            try:
                writer.write(
                    b"GET /healthz HTTP/1.1\r\n"
                    b"Connection: close\r\n\r\n"
                )
                await writer.drain()
                status, _body = await read_response(reader)
                trailing = await reader.read()
                return status, trailing
            finally:
                writer.close()

        status, trailing = with_service(scenario)
        assert status == 200
        assert trailing == b""  # server closed after the response

    def test_graceful_shutdown_drains_inflight(self):
        """Shutdown waits for an in-flight request, then stops."""

        async def scenario():
            service = GpuScaleService(
                ServiceConfig(port=0, use_cache=False)
            )
            await service.start()
            inflight = asyncio.ensure_future(
                post(service, "/v1/classify", {"kernel": KERNEL})
            )
            await asyncio.sleep(0.05)
            await service.shutdown(drain=True)
            status, body = await inflight
            assert not service.batcher.running
            return status, json.loads(body)

        status, payload = run(scenario())
        assert status == 200
        assert payload["kernel"] == KERNEL


class TestBrownoutAndFidelity:
    """Fidelity marking and degraded (predictor) fallback answers."""

    def test_exact_grid_response_is_marked(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {"kernel": KERNEL, "space": SMALL_SPACE_BODY},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["fidelity"] == "exact"
        assert "fidelity_error" not in payload
        assert "degraded_reason" not in payload

    def test_point_response_is_marked_exact(self):
        async def scenario(service):
            status, body = await post(
                service, "/v1/simulate", POINT_BODY
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["fidelity"] == "exact"

    def test_forced_brownout_answers_from_the_predictor(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {"kernel": KERNEL, "space": SMALL_SPACE_BODY},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario, brownout="force")
        assert status == 200
        assert payload["fidelity"] == "degraded"
        assert payload["degraded_reason"] == "forced"
        assert 0.0 <= payload["fidelity_error"] < 1.0

        from repro.gpu.engine import get_engine
        from repro.suites import kernel_by_name
        from repro.sweep.space import ConfigurationSpace

        space = ConfigurationSpace.from_dict(dict(SMALL_SPACE_BODY))
        expected = get_engine("predictor").simulate_grid(
            kernel_by_name(KERNEL), space
        )
        np.testing.assert_array_equal(
            np.asarray(payload["items_per_second"]),
            expected.items_per_second,
        )

    def test_auto_brownout_absorbs_saturation(self):
        async def scenario(service):
            async def rejecting_submit(
                query, timeout=None, deadline=None
            ):
                raise OverloadError("queue full")

            service.batcher.submit = rejecting_submit
            status, body = await post(
                service,
                "/v1/simulate",
                {"kernel": KERNEL, "space": SMALL_SPACE_BODY},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario, brownout="auto")
        assert status == 200
        assert payload["fidelity"] == "degraded"
        assert payload["degraded_reason"] == "saturation"

    def test_brownout_off_still_429s_on_saturation(self):
        async def scenario(service):
            async def rejecting_submit(
                query, timeout=None, deadline=None
            ):
                raise OverloadError("queue full")

            service.batcher.submit = rejecting_submit
            status, body = await post(
                service,
                "/v1/simulate",
                {"kernel": KERNEL, "space": SMALL_SPACE_BODY},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)  # brownout="off"
        assert status == 429
        assert payload["error"]["code"] == "overloaded"

    def test_classify_carries_fidelity_fields(self):
        async def scenario(service):
            status, body = await post(
                service, "/v1/classify", {"kernel": KERNEL}
            )
            return status, json.loads(body)

        status, payload = with_service(scenario, brownout="force")
        assert status == 200
        assert payload["fidelity"] == "degraded"
        assert payload["degraded_reason"] == "forced"

    def test_degraded_responses_are_counted(self):
        async def scenario(service):
            await post(
                service,
                "/v1/simulate",
                {"kernel": KERNEL, "space": SMALL_SPACE_BODY},
            )
            status, body = await get(service, "/metrics")
            return status, body.decode()

        status, text = with_service(scenario, brownout="force")
        assert status == 200
        assert 'gpuscale_degraded_total{reason="forced"} 1' in text

    def test_healthz_reports_brownout_mode(self):
        async def scenario(service):
            status, body = await get(service, "/healthz")
            return json.loads(body)

        payload = with_service(scenario, brownout="auto")
        assert payload["brownout"] == "auto"


class TestDeadlinesOverHttp:
    def test_timeout_ms_is_honoured(self):
        """A caller budget smaller than the server's shrinks the
        dispatch budget, and an exhausted deadline maps to 503
        deadline_exceeded."""
        from repro.service.batcher import DeadlineExceededError

        seen = {}

        async def scenario(service):
            async def expiring_submit(
                query, timeout=None, deadline=None
            ):
                seen["timeout"] = timeout
                seen["deadline"] = deadline
                raise DeadlineExceededError(
                    "query deadline passed before admission"
                )

            service.batcher.submit = expiring_submit
            status, body = await post(
                service,
                "/v1/simulate",
                {**POINT_BODY, "timeout_ms": 100},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 503
        assert payload["error"]["code"] == "deadline_exceeded"
        assert seen["timeout"] == pytest.approx(0.1)
        assert seen["deadline"] is not None

    def test_invalid_timeout_ms_is_a_400(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {**POINT_BODY, "timeout_ms": -1},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 400
        assert payload["error"]["code"] == "invalid_timeout"
