"""Request-schema validation: structured 400s for every bad shape."""

from __future__ import annotations

import pytest

from repro.gpu.config import HardwareConfig
from repro.service import schema
from repro.suites import kernel_by_name
from repro.sweep.space import PAPER_SPACE

KERNEL = "rodinia/bfs.kernel1"


def err(callable_, *args):
    with pytest.raises(schema.RequestError) as excinfo:
        callable_(*args)
    return excinfo.value


class TestVersion:
    def test_missing_version_means_current(self):
        request = schema.parse_simulate(
            {"kernel": KERNEL, "space": "paper"}
        )
        assert request.is_grid

    def test_explicit_current_version_accepted(self):
        schema.check_version({"version": schema.SCHEMA_VERSION})

    @pytest.mark.parametrize("bad", [0, 2, -1, "1", 1.0, True, None])
    def test_other_versions_rejected(self, bad):
        error = err(schema.check_version, {"version": bad})
        assert error.code == "unsupported_version"
        assert error.field == "version"


class TestKernel:
    def test_catalog_name_resolves(self):
        kernel = schema.parse_kernel({"kernel": KERNEL})
        assert kernel == kernel_by_name(KERNEL)

    def test_unknown_name_is_structured(self):
        error = err(schema.parse_kernel, {"kernel": "nope/missing.k"})
        assert error.code == "unknown_kernel"
        assert error.field == "kernel"
        payload = error.to_payload()
        assert payload["error"]["code"] == "unknown_kernel"
        assert payload["error"]["field"] == "kernel"

    def test_inline_definition_round_trips(self):
        original = kernel_by_name(KERNEL)
        parsed = schema.parse_kernel({"kernel": original.to_dict()})
        assert parsed == original

    def test_garbage_inline_definition(self):
        error = err(schema.parse_kernel, {"kernel": {"bogus": 1}})
        assert error.code == "invalid_kernel"

    def test_missing_kernel(self):
        error = err(schema.parse_kernel, {})
        assert error.code == "missing_field"
        assert error.field == "kernel"

    @pytest.mark.parametrize("bad", [7, [1], None, True])
    def test_wrong_kernel_type(self, bad):
        assert err(
            schema.parse_kernel, {"kernel": bad}
        ).code == "invalid_kernel"


class TestConfig:
    def test_valid_config(self):
        config = schema.parse_config(
            {"cu_count": 44, "engine_mhz": 1000, "memory_mhz": 1250}
        )
        assert config == HardwareConfig(44, 1000.0, 1250.0)

    def test_unknown_keys_rejected(self):
        error = err(
            schema.parse_config,
            {"cu_count": 4, "engine_mhz": 1, "memory_mhz": 1,
             "cu_clock": 9},
        )
        assert error.code == "invalid_config"
        assert "cu_clock" in error.message

    def test_missing_axis(self):
        error = err(schema.parse_config, {"cu_count": 4})
        assert error.code == "missing_field"
        assert error.field == "config.engine_mhz"

    def test_non_numeric_axis(self):
        error = err(
            schema.parse_config,
            {"cu_count": "many", "engine_mhz": 1, "memory_mhz": 1},
        )
        assert error.code == "invalid_config"
        assert error.field == "config.cu_count"

    def test_domain_error_is_wrapped(self):
        # Structurally fine, semantically impossible: the model's own
        # validation surfaces as a structured 400, not a 500.
        error = err(
            schema.parse_config,
            {"cu_count": -3, "engine_mhz": 1000, "memory_mhz": 1250},
        )
        assert error.code == "invalid_config"

    def test_not_an_object(self):
        assert err(schema.parse_config, 17).code == "invalid_config"


class TestSpace:
    def test_paper_literal(self):
        assert schema.parse_space("paper") is PAPER_SPACE

    def test_explicit_axes(self):
        space = schema.parse_space(
            {"cu_counts": [4, 8], "engine_mhz": [500.0],
             "memory_mhz": [475.0, 950.0]}
        )
        assert space.shape == (2, 1, 2)

    def test_unknown_keys_rejected(self):
        error = err(
            schema.parse_space,
            {"cu_counts": [4], "engine_mhz": [1], "memory_mhz": [1],
             "voltages": [0.9]},
        )
        assert error.code == "invalid_space"

    def test_grid_too_large(self):
        axis = list(range(1, 202))
        error = err(
            schema.parse_space,
            {"cu_counts": axis, "engine_mhz": axis, "memory_mhz": axis},
        )
        assert error.code == "grid_too_large"

    def test_garbage_spec(self):
        # A string space is a family name; an unrecognised one gets
        # the structured family error naming the registered families.
        error = err(schema.parse_space, "tiny")
        assert error.code == "unknown_family"
        assert "hawaii" in error.message
        assert err(schema.parse_space, 17).code == "invalid_space"


class TestSimulate:
    def test_point_shape(self):
        request = schema.parse_simulate(
            {
                "kernel": KERNEL,
                "config": {
                    "cu_count": 44, "engine_mhz": 1000,
                    "memory_mhz": 1250,
                },
            }
        )
        assert not request.is_grid
        assert request.config.cu_count == 44

    def test_grid_shape(self):
        request = schema.parse_simulate(
            {"kernel": KERNEL, "space": "paper"}
        )
        assert request.is_grid
        assert request.space is PAPER_SPACE

    def test_both_shapes_rejected(self):
        error = err(
            schema.parse_simulate,
            {
                "kernel": KERNEL,
                "space": "paper",
                "config": {
                    "cu_count": 4, "engine_mhz": 1, "memory_mhz": 1,
                },
            },
        )
        assert error.code == "invalid_shape"

    def test_neither_shape_rejected(self):
        assert err(
            schema.parse_simulate, {"kernel": KERNEL}
        ).code == "invalid_shape"

    def test_non_object_body(self):
        assert err(schema.parse_simulate, [1, 2]).code == "invalid_body"


class TestClassifyAndWhatIf:
    def test_classify_defaults_to_paper_space(self):
        request = schema.parse_classify({"kernel": KERNEL})
        assert request.space is PAPER_SPACE

    def test_whatif_defaults_to_flagship_corner(self):
        request = schema.parse_whatif({"kernel": KERNEL})
        assert request.config == PAPER_SPACE.max_config

    def test_whatif_explicit_config(self):
        request = schema.parse_whatif(
            {
                "kernel": KERNEL,
                "config": {
                    "cu_count": 8, "engine_mhz": 700,
                    "memory_mhz": 950,
                },
            }
        )
        assert request.config.cu_count == 8


class TestTimeoutMs:
    def test_absent_means_no_caller_budget(self):
        request = schema.parse_simulate(
            {"kernel": KERNEL, "space": "paper"}
        )
        assert request.timeout_s is None

    def test_converted_to_seconds(self):
        request = schema.parse_simulate(
            {"kernel": KERNEL, "space": "paper", "timeout_ms": 250}
        )
        assert request.timeout_s == pytest.approx(0.25)

    def test_accepted_on_classify_and_whatif(self):
        classify = schema.parse_classify(
            {"kernel": KERNEL, "timeout_ms": 1500}
        )
        whatif = schema.parse_whatif(
            {"kernel": KERNEL, "timeout_ms": 1500.5}
        )
        assert classify.timeout_s == pytest.approx(1.5)
        assert whatif.timeout_s == pytest.approx(1.5005)

    @pytest.mark.parametrize(
        "bad", ["100", None, True, False, 0, -5, -0.1]
    )
    def test_invalid_values_rejected(self, bad):
        error = err(
            schema.parse_simulate,
            {"kernel": KERNEL, "space": "paper", "timeout_ms": bad},
        )
        assert error.code == "invalid_timeout"
        assert error.field == "timeout_ms"
