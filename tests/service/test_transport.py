"""The router-worker wire protocol: framing, references, shm results.

The contract pinned here is that a query or result surviving one
round trip through :mod:`repro.service.transport` is *bitwise* the
original — the fleet's end-to-end bit-exactness rests on this layer
adding nothing and losing nothing. The shared-memory result path is
additionally pinned to leave no segment behind: the decoder unlinks
what the encoder created, and an abandoned result can still be freed
exactly once.
"""

from __future__ import annotations

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.gpu import W9100_LIKE, HardwareConfig
from repro.gpu.simulator import GpuSimulator
from repro.service import transport
from repro.service.batcher import (
    DeadlineExceededError,
    GridQuery,
    GridResult,
    OverloadError,
    PointQuery,
    PointResult,
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.service.transport import TransportError
from repro.suites import kernel_by_name
from repro.sweep.space import PAPER_SPACE, ConfigurationSpace

KERNEL = "rodinia/bfs.kernel1"


def run(coro):
    return asyncio.run(coro)


def roundtrip_frames(*frames):
    """Feed encoded frames through a StreamReader, read them back."""

    async def scenario():
        reader = asyncio.StreamReader()
        for frame in frames:
            reader.feed_data(transport.encode_frame(frame))
        reader.feed_eof()
        out = []
        while True:
            frame = await transport.read_frame(reader)
            if frame is None:
                return out
            out.append(frame)

    return run(scenario())


class TestFraming:
    def test_round_trip_preserves_frames_in_order(self):
        frames = [
            ("ready", 3, 12345),
            (
                "query", 7,
                ("point", KERNEL, (44, 1000.0, 1250.0)), None, 81.25,
            ),
            ("pong", 9),
        ]
        assert roundtrip_frames(*frames) == frames

    def test_large_frame_round_trips(self):
        array = np.arange(200_000, dtype=np.float64)
        (frame,) = roundtrip_frames(("blob", array))
        np.testing.assert_array_equal(frame[1], array)

    def test_clean_eof_is_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await transport.read_frame(reader)

        assert run(scenario()) is None

    def test_truncated_length_prefix_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")  # half a length prefix
            reader.feed_eof()
            return await transport.read_frame(reader)

        with pytest.raises(TransportError):
            run(scenario())

    def test_truncated_body_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            blob = transport.encode_frame(("pong", 1))
            reader.feed_data(blob[:-1])
            reader.feed_eof()
            return await transport.read_frame(reader)

        with pytest.raises(TransportError):
            run(scenario())

    def test_oversized_announcement_refused(self):
        async def scenario():
            reader = asyncio.StreamReader()
            huge = transport.MAX_FRAME_BYTES + 1
            reader.feed_data(huge.to_bytes(4, "big"))
            return await transport.read_frame(reader)

        with pytest.raises(TransportError):
            run(scenario())

    def test_oversized_frame_refused_at_encode(self):
        with pytest.raises(TransportError):
            transport.encode_frame(
                ("blob", b"x" * (transport.MAX_FRAME_BYTES + 1))
            )

    @pytest.mark.parametrize("length", [0, -1, -(2**31)])
    def test_non_positive_length_prefix_refused(self, length):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(
                length.to_bytes(4, "big", signed=True) + b"junk"
            )
            return await transport.read_frame(reader)

        with pytest.raises(TransportError, match="non-positive"):
            run(scenario())

    def test_corrupt_high_bit_reads_as_negative_not_gigabytes(self):
        # A flipped MSB in the prefix must be refused outright, not
        # interpreted as a ~2 GiB announcement to wait for.
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\x00\x00\x10" + b"body")
            return await transport.read_frame(reader)

        with pytest.raises(TransportError, match="non-positive"):
            run(scenario())

    def test_corrupt_pickle_body_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            blob = b"\x93this is not a pickle"
            reader.feed_data(len(blob).to_bytes(4, "big") + blob)
            reader.feed_eof()
            return await transport.read_frame(reader)

        with pytest.raises(TransportError, match="corrupt frame body"):
            run(scenario())

    def test_flipped_byte_in_valid_frame_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            encoded = bytearray(transport.encode_frame(("pong", 42)))
            encoded[7] ^= 0xFF  # corrupt the body, keep the length
            reader.feed_data(bytes(encoded))
            reader.feed_eof()
            return await transport.read_frame(reader)

        with pytest.raises(TransportError):
            run(scenario())


class TestQueryEncoding:
    def test_catalog_kernel_travels_by_name(self):
        kernel = kernel_by_name(KERNEL)
        assert transport.encode_kernel(kernel) == KERNEL
        assert transport.decode_kernel(KERNEL) is kernel

    def test_equal_copy_of_catalog_kernel_travels_by_name(self):
        copy = dataclasses.replace(kernel_by_name(KERNEL))
        assert transport.encode_kernel(copy) == KERNEL

    def test_inline_kernel_reusing_a_catalog_name_travels_by_value(self):
        kernel = kernel_by_name(KERNEL)
        edited = dataclasses.replace(
            kernel,
            characteristics=dataclasses.replace(
                kernel.characteristics,
                valu_ops_per_item=(
                    kernel.characteristics.valu_ops_per_item + 1.0
                ),
            ),
        )
        ref = transport.encode_kernel(edited)
        assert isinstance(ref, dict)
        assert transport.decode_kernel(ref) == edited

    def test_paper_space_travels_as_literal(self):
        assert transport.encode_space(PAPER_SPACE) == "paper"
        assert transport.decode_space("paper") is PAPER_SPACE

    def test_custom_space_round_trips(self):
        space = ConfigurationSpace(
            cu_counts=(4, 16), engine_mhz=(300.0,), memory_mhz=(475.0,)
        )
        ref = transport.encode_space(space)
        assert isinstance(ref, dict)
        assert transport.decode_space(ref) == space

    def test_point_query_round_trips(self):
        query = PointQuery(kernel_by_name(KERNEL), W9100_LIKE)
        decoded = transport.decode_query(transport.encode_query(query))
        assert decoded == query

    def test_grid_query_round_trips(self):
        query = GridQuery(kernel_by_name(KERNEL), PAPER_SPACE)
        decoded = transport.decode_query(transport.encode_query(query))
        assert decoded == query

    def test_non_default_config_round_trips_exact_floats(self):
        config = HardwareConfig(
            cu_count=28, engine_mhz=925.5, memory_mhz=1237.25
        )
        query = PointQuery(kernel_by_name(KERNEL), config)
        decoded = transport.decode_query(transport.encode_query(query))
        assert decoded.config.engine_mhz == 925.5
        assert decoded.config.memory_mhz == 1237.25

    def test_unknown_payload_kinds_raise(self):
        with pytest.raises(TransportError):
            transport.encode_query("not a query")
        with pytest.raises(TransportError):
            transport.decode_query(("warp", 1, 2))


class TestResultEncoding:
    def test_point_result_round_trips(self):
        result = GpuSimulator("interval").simulate(
            kernel_by_name(KERNEL), W9100_LIKE
        )
        query_result = PointResult(
            kernel_name=KERNEL,
            time_s=float(result.time_s),
            items_per_second=float(result.items_per_second),
        )
        decoded = transport.decode_result(
            transport.encode_result(query_result)
        )
        assert decoded == query_result

    def test_grid_result_rides_shared_memory_bit_exact(self):
        grid = GpuSimulator("interval").simulate_grid(
            kernel_by_name(KERNEL), PAPER_SPACE
        )
        original = GridResult(
            kernel_name=KERNEL,
            items_per_second=np.asarray(grid.items_per_second),
            global_size=grid.global_size,
            from_cache=False,
        )
        payload = transport.encode_result(original)
        assert payload[0] == "grid-shm", "surface must ride shm"
        decoded = transport.decode_result(payload)
        np.testing.assert_array_equal(
            decoded.items_per_second, original.items_per_second
        )
        assert decoded.items_per_second.dtype == (
            original.items_per_second.dtype
        )
        assert decoded.global_size == original.global_size
        assert decoded.from_cache is original.from_cache
        # The decoder unlinked the segment: a second decode cannot
        # find it, and releasing the same payload again is a no-op.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=payload[2])
        transport.release_result(payload)

    def test_release_frees_an_abandoned_grid_result(self):
        from multiprocessing import shared_memory

        original = GridResult(
            kernel_name=KERNEL,
            items_per_second=np.arange(24, dtype=np.float64).reshape(
                2, 3, 4
            ),
            global_size=1024,
            from_cache=True,
        )
        payload = transport.encode_result(original)
        assert payload[0] == "grid-shm"
        transport.release_result(payload)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=payload[2])

    def test_inline_fallback_round_trips(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 2, 2)
        payload = (
            "grid-inline", KERNEL, array, 4096, False,
        )
        decoded = transport.decode_result(payload)
        np.testing.assert_array_equal(decoded.items_per_second, array)
        assert decoded.global_size == 4096

    def test_unknown_result_kind_raises(self):
        with pytest.raises(TransportError):
            transport.decode_result(("tensor", KERNEL))

    def test_failed_shm_attach_is_a_transport_error(self):
        # The worker announced a segment that no longer exists (died
        # between create and router attach, or chaos unlinked it):
        # the router must get a structured error, not an uncaught
        # FileNotFoundError that kills its supervisor task.
        payload = (
            "grid-shm", KERNEL, "gpuscale-no-such-segment",
            (2, 3, 4), "float64", 1024, False,
        )
        with pytest.raises(TransportError, match="failed to attach"):
            transport.decode_result(payload)

    def test_release_of_a_vanished_segment_is_a_noop(self):
        transport.release_result(
            ("grid-shm", KERNEL, "gpuscale-no-such-segment",
             (1,), "float64", 1, False)
        )


class TestErrorEncoding:
    @pytest.mark.parametrize(
        "exc, code, cls",
        [
            (ServiceTimeoutError("slow"), "timeout", ServiceTimeoutError),
            (DeadlineExceededError("late"), "deadline",
             DeadlineExceededError),
            (ServiceClosedError("bye"), "closed", ServiceClosedError),
            (ConfigurationError("bad cfg"), "configuration",
             ConfigurationError),
            (WorkloadError("bad kernel"), "workload", WorkloadError),
            (ReproError("generic"), "repro", ReproError),
        ],
    )
    def test_known_errors_round_trip(self, exc, code, cls):
        got_code, message, extra = transport.encode_error(exc)
        assert got_code == code
        rebuilt = transport.decode_error(got_code, message, extra)
        assert type(rebuilt) is cls
        assert str(rebuilt) == str(exc)

    def test_overload_carries_retry_after(self):
        code, message, extra = transport.encode_error(
            OverloadError("queue full", retry_after=7.25)
        )
        rebuilt = transport.decode_error(code, message, extra)
        assert isinstance(rebuilt, OverloadError)
        assert rebuilt.retry_after == 7.25

    def test_simulation_error_keeps_kernel_and_reason(self):
        code, message, extra = transport.encode_error(
            SimulationError("rodinia/bfs.kernel1", "injected fault")
        )
        rebuilt = transport.decode_error(code, message, extra)
        assert isinstance(rebuilt, SimulationError)
        assert rebuilt.kernel_name == "rodinia/bfs.kernel1"
        assert rebuilt.reason == "injected fault"

    def test_foreign_exception_maps_to_internal(self):
        code, message, _extra = transport.encode_error(
            RuntimeError("boom")
        )
        assert code == "internal"
        rebuilt = transport.decode_error(code, message, {})
        assert isinstance(rebuilt, ReproError)
        assert "boom" in str(rebuilt)
