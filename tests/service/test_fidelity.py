"""Tolerance-tiered fidelity routing over the wire.

A grid query may opt into approximation by naming its error budget:
``tolerance`` routes the query to the predictor tier when the tier's
measured error fits inside the budget, and falls back to the exact
interval engines otherwise. Point queries are always exact and reject
the key outright. These tests pin the schema contract, both routing
outcomes, the tier-selection metrics, and the enriched ``/v1/engines``
catalog that advertises each engine's fidelity tier and error budget.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.service import schema
from repro.service.loadgen import fetch
from repro.service.schema import RequestError
from repro.service.server import GpuScaleService, ServiceConfig

KERNEL = "rodinia/bfs.kernel1"
SMALL_SPACE_BODY = {
    "cu_counts": [4, 16, 44],
    "engine_mhz": [300.0, 1000.0],
    "memory_mhz": [475.0, 1250.0],
}
# The predictor's measured error on SMALL_SPACE is ~0.10, so a 0.5
# budget admits the approximate tier and 0.01 demands the exact one.
LOOSE_TOLERANCE = 0.5
TIGHT_TOLERANCE = 0.01


def run(coro):
    return asyncio.run(coro)


def with_service(fn, **config_overrides):
    overrides = {"port": 0, "use_cache": False, **config_overrides}

    async def scenario():
        service = GpuScaleService(ServiceConfig(**overrides))
        await service.start()
        try:
            return await fn(service)
        finally:
            await service.shutdown(drain=True)

    return run(scenario())


def post(service, path, payload):
    return fetch(service.config.host, service.port, "POST", path, payload)


def get(service, path):
    return fetch(service.config.host, service.port, "GET", path)


class TestToleranceSchema:
    def test_absent_tolerance_parses_to_none(self):
        request = schema.parse_simulate(
            {"kernel": KERNEL, "space": dict(SMALL_SPACE_BODY)}
        )
        assert request.tolerance is None

    def test_valid_tolerance_parses_to_float(self):
        request = schema.parse_simulate(
            {
                "kernel": KERNEL,
                "space": dict(SMALL_SPACE_BODY),
                "tolerance": 0.25,
            }
        )
        assert request.tolerance == 0.25

    @pytest.mark.parametrize(
        "tolerance", [True, False, "0.5", -0.1, float("nan"), None]
    )
    def test_invalid_tolerance_rejected(self, tolerance):
        with pytest.raises(RequestError) as excinfo:
            schema.parse_simulate(
                {
                    "kernel": KERNEL,
                    "space": dict(SMALL_SPACE_BODY),
                    "tolerance": tolerance,
                }
            )
        assert excinfo.value.code == "invalid_tolerance"
        assert excinfo.value.field == "tolerance"

    def test_point_query_rejects_tolerance(self):
        with pytest.raises(RequestError) as excinfo:
            schema.parse_simulate(
                {
                    "kernel": KERNEL,
                    "config": {
                        "cu_count": 44,
                        "engine_mhz": 1000,
                        "memory_mhz": 1250,
                    },
                    "tolerance": 0.5,
                }
            )
        assert excinfo.value.code == "invalid_tolerance"

    def test_http_400_on_bad_tolerance(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {
                    "kernel": KERNEL,
                    "space": SMALL_SPACE_BODY,
                    "tolerance": -1,
                },
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 400
        assert payload["error"]["code"] == "invalid_tolerance"


class TestToleranceRouting:
    def test_loose_tolerance_answered_by_predictor_tier(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {
                    "kernel": KERNEL,
                    "space": SMALL_SPACE_BODY,
                    "tolerance": LOOSE_TOLERANCE,
                },
            )
            _, metrics = await get(service, "/metrics")
            return status, json.loads(body), metrics.decode()

        status, payload, metrics = with_service(scenario)
        assert status == 200
        assert payload["fidelity"] == "approximate"
        assert payload["tier"] == "predictor"
        assert 0.0 <= payload["fidelity_error"] <= LOOSE_TOLERANCE
        assert "degraded_reason" not in payload

        from repro.gpu.engine import get_engine
        from repro.suites import kernel_by_name
        from repro.sweep.space import ConfigurationSpace

        space = ConfigurationSpace.from_dict(dict(SMALL_SPACE_BODY))
        expected = get_engine("predictor").simulate_grid(
            kernel_by_name(KERNEL), space
        )
        np.testing.assert_array_equal(
            np.asarray(payload["items_per_second"]),
            expected.items_per_second,
        )
        assert (
            'gpuscale_tier_selected_total{tier="predictor", '
            'reason="tolerance"} 1' in metrics
        )

    def test_tight_tolerance_falls_back_to_exact(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {
                    "kernel": KERNEL,
                    "space": SMALL_SPACE_BODY,
                    "tolerance": TIGHT_TOLERANCE,
                },
            )
            _, metrics = await get(service, "/metrics")
            return status, json.loads(body), metrics.decode()

        status, payload, metrics = with_service(scenario)
        assert status == 200
        assert payload["fidelity"] == "exact"
        assert "tier" not in payload
        assert "fidelity_error" not in payload

        from repro.gpu import GpuSimulator
        from repro.suites import kernel_by_name
        from repro.sweep.space import ConfigurationSpace

        space = ConfigurationSpace.from_dict(dict(SMALL_SPACE_BODY))
        expected = GpuSimulator("interval").simulate_grid(
            kernel_by_name(KERNEL), space
        )
        np.testing.assert_allclose(
            np.asarray(payload["items_per_second"]),
            expected.items_per_second,
        )
        assert (
            'gpuscale_tier_selected_total{tier="exact", '
            'reason="tolerance_fallback"} 1' in metrics
        )

    def test_untoleranced_query_counts_as_default_exact(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {"kernel": KERNEL, "space": SMALL_SPACE_BODY},
            )
            _, metrics = await get(service, "/metrics")
            return status, json.loads(body), metrics.decode()

        status, payload, metrics = with_service(scenario)
        assert status == 200
        assert payload["fidelity"] == "exact"
        assert (
            'gpuscale_tier_selected_total{tier="exact", '
            'reason="default"} 1' in metrics
        )
        assert 'reason="tolerance"' not in metrics

    def test_zero_tolerance_is_valid_and_exact(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/simulate",
                {
                    "kernel": KERNEL,
                    "space": SMALL_SPACE_BODY,
                    "tolerance": 0,
                },
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["fidelity"] == "exact"

    def test_classify_accepts_tolerance(self):
        async def scenario(service):
            status, body = await post(
                service,
                "/v1/classify",
                {"kernel": KERNEL, "tolerance": LOOSE_TOLERANCE},
            )
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        assert payload["fidelity"] in ("approximate", "exact")
        if payload["fidelity"] == "approximate":
            assert payload["tier"] == "predictor"
            assert "fidelity_error" in payload

    def test_routing_works_with_brownout_off_config(self):
        """The predictor tier serves toleranced queries even when the
        brownout degradation path is disabled."""

        async def scenario(service):
            assert service.brownout is None
            status, body = await post(
                service,
                "/v1/simulate",
                {
                    "kernel": KERNEL,
                    "space": SMALL_SPACE_BODY,
                    "tolerance": LOOSE_TOLERANCE,
                },
            )
            return status, json.loads(body)

        status, payload = with_service(scenario, brownout="off")
        assert status == 200
        assert payload["fidelity"] == "approximate"


class TestEnginesCatalog:
    def test_rows_carry_fidelity_and_fingerprint(self):
        async def scenario(service):
            status, body = await get(service, "/v1/engines")
            return status, json.loads(body)

        status, payload = with_service(scenario)
        assert status == 200
        rows = {row["name"]: row for row in payload["engines"]}

        for row in rows.values():
            assert row["fidelity"] in ("reference", "exact", "approximate")
            assert row["error_budget"] >= 0.0
            assert isinstance(row["fingerprint_material"], str)

        study_mt = rows["study-mt"]
        assert study_mt["family"] == "interval"
        assert study_mt["fidelity"] == "exact"
        assert study_mt["capabilities"] == {
            "point": False, "grid": False, "study": True,
        }
        assert (
            study_mt["fingerprint_material"]
            == rows["interval-batch"]["fingerprint_material"]
        )

        assert rows["event"]["fidelity"] == "reference"
        predictor = rows["predictor"]
        assert predictor["fidelity"] == "approximate"
        assert predictor["error_budget"] == pytest.approx(0.35)
