"""Chaos harness: spec parsing, schedule determinism, and the fleet
resilience property.

The property pinned at the bottom is the contract the whole resilience
layer exists to provide: under a seeded fault schedule (kills, frame
truncation, corrupt pickles, shm attach failures, delays), every
admitted query gets **exactly one** outcome — a bit-exact result or a
structured error — the fleet drains cleanly, and no shared-memory
segment leaks.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.errors import ReproError
from repro.gpu import W9100_LIKE
from repro.gpu.simulator import GpuSimulator
from repro.service.batcher import GridQuery, PointQuery
from repro.service.chaos import (
    ACTIONS,
    ChaosConfig,
    ChaosInjector,
    ChaosSpecError,
    format_chaos,
    parse_chaos,
)
from repro.service.router import FleetExecutor
from repro.suites import all_kernels, kernel_by_name
from repro.sweep import reduced_space

KERNEL = "rodinia/bfs.kernel1"


def run(coro):
    return asyncio.run(coro)


class TestChaosSpec:
    def test_parse_full_spec(self):
        config = parse_chaos(
            "seed=7,corrupt=0.05,kill=0.01,arm_after=20,workers=0+2"
        )
        assert config.seed == 7
        assert config.corrupt == 0.05
        assert config.kill == 0.01
        assert config.arm_after == 20
        assert config.workers == (0, 2)

    def test_parse_ignores_whitespace_and_blanks(self):
        config = parse_chaos(" seed=3 , , delay=0.5 ")
        assert config.seed == 3
        assert config.delay == 0.5

    def test_format_parse_round_trip(self):
        config = ChaosConfig(
            seed=42,
            kill=0.01,
            truncate=0.125,
            shm_fail=0.25,
            delay=0.5,
            delay_ms=10.0,
            arm_after=8,
            workers=(1, 3),
        )
        assert parse_chaos(format_chaos(config)) == config

    @pytest.mark.parametrize(
        "spec",
        [
            "corrupt",  # not key=value
            "unknown=1",  # no such knob
            "kill=1.5",  # probability outside [0, 1]
            "kill=-0.1",
            "hang_s=-1",
            "seed=x",  # unparsable value
            "workers=a+b",
        ],
    )
    def test_bad_specs_are_refused(self, spec):
        with pytest.raises(ChaosSpecError):
            parse_chaos(spec)

    def test_targets(self):
        assert ChaosConfig().targets(5)
        scoped = ChaosConfig(workers=(0, 2))
        assert scoped.targets(0) and scoped.targets(2)
        assert not scoped.targets(1)


class TestChaosInjector:
    CONFIG = ChaosConfig(
        seed=13, kill=0.05, corrupt=0.1, delay=0.2, truncate=0.05
    )

    def sequence(self, injector, n=300):
        return [injector.sample() for _ in range(n)]

    def test_same_identity_replays_the_same_schedule(self):
        first = self.sequence(ChaosInjector(self.CONFIG, 1, 0))
        second = self.sequence(ChaosInjector(self.CONFIG, 1, 0))
        assert first == second
        assert any(action is not None for action in first)

    def test_workers_and_generations_draw_distinct_schedules(self):
        base = self.sequence(ChaosInjector(self.CONFIG, 1, 0))
        other_worker = self.sequence(ChaosInjector(self.CONFIG, 2, 0))
        respawned = self.sequence(ChaosInjector(self.CONFIG, 1, 1))
        assert base != other_worker
        assert base != respawned

    def test_only_known_actions_fire(self):
        drawn = set(self.sequence(ChaosInjector(self.CONFIG, 0, 0)))
        drawn.discard(None)
        assert drawn <= set(ACTIONS)

    def test_arm_after_grace_period(self):
        config = ChaosConfig(seed=13, kill=1.0, arm_after=10)
        injector = ChaosInjector(config, 0, 0)
        first = [injector.sample() for _ in range(10)]
        assert first == [None] * 10
        assert injector.sample() == "kill"

    def test_untargeted_worker_never_fires(self):
        config = ChaosConfig(seed=13, kill=1.0, workers=(0,))
        assert self.sequence(ChaosInjector(config, 1, 0)) == [
            None
        ] * 300

    def test_drain_kill(self):
        always = ChaosInjector(ChaosConfig(drain_kill=1.0), 0, 0)
        never = ChaosInjector(ChaosConfig(drain_kill=0.0), 0, 0)
        assert always.sample_drain_kill()
        assert not never.sample_drain_kill()


class TestFleetUnderChaos:
    """The resilience property, end to end through real processes."""

    def _queries(self):
        kernels = all_kernels("proxyapps") + all_kernels("shoc")
        space = reduced_space(3, 3, 3)
        queries = [GridQuery(k, space) for k in kernels[:10]]
        queries += [
            PointQuery(k, W9100_LIKE) for k in kernels[:10]
        ]
        return queries

    def _expected(self, query):
        direct = GpuSimulator("interval")
        if isinstance(query, GridQuery):
            return direct.simulate_grid(query.kernel, query.space)
        return direct.simulate(query.kernel, query.config)

    def _run_fleet(self, chaos, n_workers=3):
        queries = self._queries()

        async def scenario():
            fleet = FleetExecutor(
                n_workers,
                use_cache=False,
                max_wait_ms=20.0,
                chaos=chaos,
                restart_budget=64,
                restart_window_s=60.0,
            )
            await fleet.start()
            tasks = [
                asyncio.ensure_future(
                    fleet.submit(query, timeout=60.0)
                )
                for query in queries
            ]
            # The no-hang bound: everything settles well inside the
            # per-query timeout, even while workers are being killed.
            outcomes = await asyncio.wait_for(
                asyncio.gather(*tasks, return_exceptions=True),
                timeout=120.0,
            )
            await asyncio.wait_for(fleet.stop(drain=True), 60.0)
            return outcomes

        return queries, run(scenario())

    def _check_outcomes(self, queries, outcomes):
        assert len(outcomes) == len(queries)
        answered = 0
        for query, outcome in zip(queries, outcomes):
            if isinstance(outcome, Exception):
                # Structured service errors only — no raw pickle /
                # OS / asyncio exceptions may escape to callers.
                assert isinstance(outcome, ReproError), outcome
                continue
            answered += 1
            expected = self._expected(query)
            if isinstance(query, GridQuery):
                np.testing.assert_array_equal(
                    outcome.items_per_second,
                    expected.items_per_second,
                )
            else:
                assert outcome.items_per_second == float(
                    expected.items_per_second
                )
        return answered

    def test_every_query_answered_exactly_once_under_chaos(self):
        before = set(os.listdir("/dev/shm"))
        chaos = ChaosConfig(
            seed=2015,
            kill=0.02,
            truncate=0.03,
            corrupt=0.03,
            shm_fail=0.05,
            delay=0.2,
            delay_ms=20.0,
            arm_after=2,
        )
        queries, outcomes = self._run_fleet(chaos)
        answered = self._check_outcomes(queries, outcomes)
        # The schedule is gentle enough that the fleet keeps
        # answering: chaos degrades, it must not black out.
        assert answered >= len(queries) // 2
        leaked = {
            name
            for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        assert not leaked, f"leaked shared memory: {leaked}"

    def test_mid_drain_kills_do_not_stall_shutdown(self):
        chaos = ChaosConfig(seed=7, drain_kill=1.0)
        queries, outcomes = self._run_fleet(chaos, n_workers=2)
        answered = self._check_outcomes(queries, outcomes)
        assert answered == len(queries)

    def test_aggressive_shm_failure_still_terminates(self):
        """shm_fail=1.0 breaks every grid result segment; the router
        must fail over a bounded number of times, then surface a
        structured error rather than loop forever."""
        chaos = ChaosConfig(seed=3, shm_fail=1.0)
        kernel = kernel_by_name(KERNEL)
        grid = GridQuery(kernel, reduced_space(3, 3, 3))
        point = PointQuery(kernel, W9100_LIKE)

        async def scenario():
            fleet = FleetExecutor(
                2, use_cache=False, chaos=chaos, max_wait_ms=10.0
            )
            await fleet.start()
            try:
                grid_outcome, point_outcome = await asyncio.wait_for(
                    asyncio.gather(
                        fleet.submit(grid, timeout=30.0),
                        fleet.submit(point, timeout=30.0),
                        return_exceptions=True,
                    ),
                    timeout=60.0,
                )
            finally:
                await asyncio.wait_for(fleet.stop(drain=True), 30.0)
            return grid_outcome, point_outcome

        grid_outcome, point_outcome = run(scenario())
        assert isinstance(grid_outcome, ReproError)
        # Point results travel inline, untouched by shm failures.
        expected = GpuSimulator("interval").simulate(kernel, W9100_LIKE)
        assert point_outcome.items_per_second == float(
            expected.items_per_second
        )

    def test_chaos_off_is_bit_exact_and_fault_free(self):
        queries, outcomes = self._run_fleet(None, n_workers=2)
        answered = self._check_outcomes(queries, outcomes)
        assert answered == len(queries)
