"""Open-loop load generation: fixed arrivals, honest shed accounting.

The closed-loop harness adapts its offered load to the service, so it
can only measure capacity. :func:`run_open_loop` offers a fixed
arrival rate whether or not the service keeps up — below the knee
every arrival completes with a 200; past it the report must surface
what actually happened (429/503 counts, client-side queueing latency,
unsent arrivals) instead of pretending throughput kept up. Both
regimes are pinned here against a real in-process service.
"""

from __future__ import annotations

import asyncio
import math
import time

import pytest

from repro.gpu.simulator import GpuSimulator
from repro.service.loadgen import (
    OpenLoopReport,
    encode_request,
    run_open_loop,
    run_saturation,
)
from repro.service.server import GpuScaleService, ServiceConfig

POINT_BODY = {
    "kernel": "rodinia/bfs.kernel1",
    "config": {"cu_count": 44, "engine_mhz": 1000, "memory_mhz": 1250},
}


class SlowPointSimulator:
    """Point engine with a fixed per-call cost, to set a known knee."""

    supports_point = True
    supports_grid = False
    supports_study = False
    engine_name = "interval"

    def __init__(self, delay_s: float):
        self._inner = GpuSimulator("interval")
        self._delay_s = delay_s

    def simulate(self, kernel, config):
        time.sleep(self._delay_s)
        return self._inner.simulate(kernel, config)


def with_service(fn, *, simulator=None, **config_overrides):
    overrides = {"port": 0, "use_cache": False, **config_overrides}

    async def scenario():
        service = GpuScaleService(
            ServiceConfig(**overrides), simulator=simulator
        )
        await service.start()
        try:
            return await fn(service)
        finally:
            await service.shutdown(drain=True)

    return asyncio.run(scenario())


class TestOpenLoopReport:
    def test_quantiles_of_empty_sample_are_nan(self):
        report = OpenLoopReport(
            offered_rps=10.0, seconds=1.0, scheduled=0,
            completed=0, errors=0, unsent=0,
        )
        assert math.isnan(report.p50_ms)
        assert math.isnan(report.p99_ms)
        assert report.achieved_rps == 0.0
        assert report.shed_rate == 0.0

    def test_shed_counts_429_and_503(self):
        report = OpenLoopReport(
            offered_rps=10.0, seconds=2.0, scheduled=20,
            completed=20, errors=0, unsent=0,
            statuses={200: 14, 429: 4, 503: 2},
        )
        assert report.shed == 6
        assert report.shed_rate == 6 / 20
        assert report.achieved_rps == 10.0

    def test_as_dict_stringifies_status_keys(self):
        report = OpenLoopReport(
            offered_rps=10.0, seconds=2.0, scheduled=20,
            completed=18, errors=1, unsent=1,
            statuses={429: 3, 200: 15},
            latencies_s=[0.001, 0.002, 0.004],
        )
        payload = report.as_dict()
        assert payload["statuses"] == {"200": 15, "429": 3}
        assert payload["unsent"] == 1
        assert payload["offered_rps"] == 10.0
        assert payload["latency_ms"]["p50"] == 2.0

    def test_invalid_arguments_rejected(self):
        async def scenario(service):
            with pytest.raises(ValueError):
                await run_open_loop(
                    service.config.host, service.port, [b"x"],
                    rate_rps=0.0, duration_s=0.1,
                )
            with pytest.raises(ValueError):
                await run_open_loop(
                    service.config.host, service.port, [],
                    rate_rps=10.0, duration_s=0.1,
                )

        with_service(scenario)


class TestBelowTheKnee:
    def test_every_arrival_completes_with_200(self):
        request = encode_request("/v1/simulate", POINT_BODY)

        async def scenario(service):
            return await run_open_loop(
                service.config.host, service.port, [request],
                rate_rps=200.0, duration_s=0.5, connections=8,
            )

        report = with_service(scenario)
        assert report.scheduled == 100
        assert report.completed == 100
        assert report.unsent == 0
        assert report.errors == 0
        assert set(report.statuses) == {200}
        assert report.shed == 0
        assert len(report.latencies_s) == 100
        assert report.p99_ms >= report.p50_ms > 0


class TestPastTheKnee:
    def test_overload_sheds_with_429_not_errors(self):
        """Offered rate ~3x a known capacity: the service answers
        what it can and 429s the rest; nothing is silently dropped."""
        request = encode_request("/v1/simulate", POINT_BODY)
        # 5 ms per point, unbatched: capacity ~200 req/s.
        simulator = SlowPointSimulator(0.005)

        async def scenario(service):
            return await run_open_loop(
                service.config.host, service.port, [request],
                rate_rps=600.0, duration_s=0.6, connections=16,
            )

        report = with_service(
            scenario,
            simulator=simulator,
            max_batch=1,
            queue_limit=8,
        )
        assert report.errors == 0
        assert set(report.statuses) <= {200, 429, 503}
        assert report.statuses.get(200, 0) > 0
        assert report.shed > 0, report.statuses
        assert 0.0 < report.shed_rate < 1.0
        # Every scheduled arrival is accounted for: answered, or
        # still queued client-side when the clock ran out.
        assert report.completed + report.unsent == report.scheduled


class TestSaturationLadder:
    def test_reports_one_rung_per_rate_in_order(self):
        request = encode_request("/v1/simulate", POINT_BODY)

        async def scenario(service):
            return await run_saturation(
                service.config.host, service.port, [request],
                rates_rps=[100.0, 200.0],
                step_duration_s=0.3,
                connections=8,
            )

        reports = with_service(scenario)
        assert [r.offered_rps for r in reports] == [100.0, 200.0]
        for report in reports:
            assert report.completed > 0
            assert report.errors == 0
