"""``gpuscale serve`` as a real process: boot, query, SIGTERM, drain."""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.service.loadgen import fetch

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.engine == "interval"
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0

    def test_serve_engine_choices_are_registry_backed(self):
        from repro.gpu.engine import engine_names

        for name in engine_names():
            args = build_parser().parse_args(["serve", "--engine", name])
            assert args.engine == name
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--engine", "warp9"])

    def test_serve_accepts_cache_flags(self):
        args = build_parser().parse_args(
            ["serve", "--no-cache", "--port", "0"]
        )
        assert args.no_cache
        assert args.port == 0


class TestServeProcess:
    @pytest.fixture
    def server(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--no-cache",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
            cwd=tmp_path,
        )
        try:
            line = process.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            assert match, f"no listen line, got {line!r}"
            yield process, int(match.group(1)), line
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_boot_query_sigterm_drain(self, server):
        process, port, listen_line = server
        assert "engine=interval" in listen_line
        assert "max_batch=64" in listen_line

        async def probe():
            deadline = time.monotonic() + 10
            while True:
                try:
                    status, body = await fetch(
                        "127.0.0.1", port, "GET", "/healthz"
                    )
                    return status, json.loads(body)
                except (ConnectionError, OSError):
                    if time.monotonic() > deadline:
                        raise
                    await asyncio.sleep(0.05)

        status, health = asyncio.run(probe())
        assert status == 200
        assert health["status"] == "ok"

        async def simulate():
            return await fetch(
                "127.0.0.1", port, "POST", "/v1/simulate",
                {
                    "kernel": "rodinia/bfs.kernel1",
                    "config": {
                        "cu_count": 44, "engine_mhz": 1000,
                        "memory_mhz": 1250,
                    },
                },
            )

        status, body = asyncio.run(simulate())
        assert status == 200
        assert json.loads(body)["items_per_second"] > 0

        process.send_signal(signal.SIGTERM)
        remaining = process.communicate(timeout=30)[0]
        assert process.returncode == 0
        assert "drained cleanly" in remaining
