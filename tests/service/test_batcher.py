"""The micro-batcher: bit-exactness, coalescing, isolation, backpressure.

The tentpole invariant pinned here: whatever mix of point and grid
queries N concurrent clients submit, every response is **bitwise
identical** to a direct ``GpuSimulator.simulate`` /
``simulate_grid`` call for that query — batching is invisible except
in the metrics. The property test drives that with Hypothesis-chosen
query mixes; the fault tests pin the other half of the contract: one
query's failure never leaks into a batch peer's answer.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, SimulationError
from repro.gpu import W9100_LIKE, HardwareConfig
from repro.gpu.simulator import GpuSimulator
from repro.service.batcher import (
    GridQuery,
    GridResult,
    MicroBatcher,
    OverloadError,
    PointQuery,
    PointResult,
    ServiceClosedError,
    ServiceTimeoutError,
)

#: Hardware points the tests cross kernels with.
CONFIGS = (
    W9100_LIKE,
    HardwareConfig(cu_count=8, engine_mhz=600.0, memory_mhz=475.0),
    HardwareConfig(cu_count=24, engine_mhz=925.0, memory_mhz=950.0),
)


def run(coro):
    return asyncio.run(coro)


async def make_batcher(simulator, **kwargs):
    batcher = MicroBatcher(simulator, **kwargs)
    await batcher.start()
    return batcher


class CountingSimulator:
    """Delegating wrapper that counts calls per shape."""

    def __init__(self, inner):
        self._inner = inner
        self.point_calls = 0
        self.grid_calls = 0
        self.study_calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def simulate(self, kernel, config):
        self.point_calls += 1
        return self._inner.simulate(kernel, config)

    def simulate_grid(self, kernel, space):
        self.grid_calls += 1
        return self._inner.simulate_grid(kernel, space)

    def simulate_study(self, kernels, space):
        self.study_calls += 1
        return self._inner.simulate_study(kernels, space)


class GatedSimulator:
    """Point engine whose evaluations block until the gate opens."""

    supports_point = True
    supports_grid = False
    supports_study = False

    def __init__(self, inner):
        self._inner = inner
        self.gate = threading.Event()

    def simulate(self, kernel, config):
        assert self.gate.wait(timeout=30), "test gate never opened"
        return self._inner.simulate(kernel, config)


class PoisonedPointSimulator:
    """Fails point queries for one kernel; everything else delegates."""

    def __init__(self, inner, poisoned_name):
        self._inner = inner
        self._poisoned = poisoned_name

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def simulate(self, kernel, config):
        if kernel.full_name == self._poisoned:
            raise SimulationError(kernel.full_name, "injected fault")
        return self._inner.simulate(kernel, config)


class BrokenStudySimulator:
    """Advertises study support but every study call fails."""

    supports_point = True
    supports_grid = True
    supports_study = True

    def __init__(self, inner):
        self._inner = inner
        self.study_attempts = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def simulate_grid(self, kernel, space):
        return self._inner.simulate_grid(kernel, space)

    def simulate_study(self, kernels, space):
        self.study_attempts += 1
        raise SimulationError("<pack>", "study engine wedged")


class TestLifecycle:
    def test_constructor_validation(self):
        simulator = GpuSimulator("interval")
        with pytest.raises(ValueError):
            MicroBatcher(simulator, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(simulator, max_wait_ms=-1)
        with pytest.raises(ValueError):
            MicroBatcher(simulator, queue_limit=0)

    def test_submit_before_start_is_closed(self, archetype_kernels):
        async def scenario():
            batcher = MicroBatcher(GpuSimulator("interval"))
            assert not batcher.running
            with pytest.raises(ServiceClosedError):
                await batcher.submit(
                    PointQuery(archetype_kernels[0], W9100_LIKE)
                )

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            batcher = await make_batcher(GpuSimulator("interval"))
            try:
                with pytest.raises(RuntimeError):
                    await batcher.start()
            finally:
                await batcher.stop()

        run(scenario())

    def test_stop_is_idempotent_and_closes(self, archetype_kernels):
        async def scenario():
            batcher = await make_batcher(GpuSimulator("interval"))
            assert batcher.running
            await batcher.stop()
            await batcher.stop()
            assert not batcher.running
            with pytest.raises(ServiceClosedError):
                await batcher.submit(
                    PointQuery(archetype_kernels[0], W9100_LIKE)
                )

        run(scenario())

    def test_non_query_rejected(self):
        async def scenario():
            batcher = await make_batcher(GpuSimulator("interval"))
            try:
                with pytest.raises(TypeError):
                    await batcher.submit("simulate please")
            finally:
                await batcher.stop()

        run(scenario())


class TestBitExactness:
    def test_concurrent_points_match_direct_bitwise(
        self, archetype_kernels
    ):
        direct = GpuSimulator("interval")
        queries = [
            PointQuery(kernel, config)
            for kernel in archetype_kernels[:4]
            for config in CONFIGS
        ]

        async def scenario():
            batcher = await make_batcher(GpuSimulator("interval"))
            try:
                return await asyncio.gather(
                    *(batcher.submit(q) for q in queries)
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        for query, result in zip(queries, results):
            expected = direct.simulate(query.kernel, query.config)
            assert isinstance(result, PointResult)
            assert result.kernel_name == query.kernel.full_name
            assert result.time_s == float(expected.time_s)
            assert result.items_per_second == float(
                expected.items_per_second
            )

    def test_coalesced_grids_match_direct_bitwise(
        self, archetype_kernels, small_space
    ):
        direct = GpuSimulator("interval")
        counting = CountingSimulator(GpuSimulator("interval"))
        queries = [
            GridQuery(kernel, small_space)
            for kernel in archetype_kernels[:5]
        ]

        async def scenario():
            batcher = await make_batcher(
                counting, max_wait_ms=50.0, max_batch=16
            )
            try:
                return await asyncio.gather(
                    *(batcher.submit(q) for q in queries)
                ), batcher.batches_dispatched
            finally:
                await batcher.stop()

        results, batches = run(scenario())
        # Coalescing happened: one batch, one study call, zero
        # per-kernel grid calls.
        assert batches == 1
        assert counting.study_calls == 1
        assert counting.grid_calls == 0
        for query, result in zip(queries, results):
            expected = direct.simulate_grid(query.kernel, small_space)
            assert isinstance(result, GridResult)
            np.testing.assert_array_equal(
                result.items_per_second, expected.items_per_second
            )
            np.testing.assert_array_equal(
                result.time_s,
                query.kernel.geometry.global_size
                / result.items_per_second,
            )
            assert not result.from_cache

    def test_duplicate_queries_share_one_evaluation(
        self, archetype_kernels, small_space
    ):
        counting = CountingSimulator(GpuSimulator("interval"))
        query = GridQuery(archetype_kernels[0], small_space)

        async def scenario():
            batcher = await make_batcher(
                counting, max_wait_ms=50.0, max_batch=16
            )
            try:
                return await asyncio.gather(
                    *(batcher.submit(query) for _ in range(8))
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        assert counting.grid_calls + counting.study_calls == 1
        reference = results[0].items_per_second
        for result in results[1:]:
            np.testing.assert_array_equal(
                result.items_per_second, reference
            )

    @given(
        plan=st.lists(
            st.tuples(
                st.booleans(),  # grid query?
                st.integers(min_value=0, max_value=5),  # kernel index
                st.integers(min_value=0, max_value=2),  # config index
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_property_mixed_concurrent_clients_bit_exact(
        self, plan, archetype_kernels, small_space
    ):
        """N concurrent clients, any point/grid mix: every answer is
        bitwise the direct engine's, duplicates included."""
        direct = GpuSimulator("interval")
        queries = [
            GridQuery(archetype_kernels[k], small_space)
            if is_grid
            else PointQuery(archetype_kernels[k], CONFIGS[c])
            for is_grid, k, c in plan
        ]

        async def scenario():
            batcher = await make_batcher(
                GpuSimulator("interval"),
                max_wait_ms=20.0,
                max_batch=len(queries),
            )
            try:
                return await asyncio.gather(
                    *(batcher.submit(q) for q in queries)
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        for query, result in zip(queries, results):
            if isinstance(query, GridQuery):
                expected = direct.simulate_grid(
                    query.kernel, query.space
                )
                np.testing.assert_array_equal(
                    result.items_per_second,
                    expected.items_per_second,
                )
            else:
                expected = direct.simulate(query.kernel, query.config)
                assert result.time_s == float(expected.time_s)
                assert result.items_per_second == float(
                    expected.items_per_second
                )

    def test_cache_round_trip_is_bit_exact(
        self, tmp_path, archetype_kernels, small_space
    ):
        from repro.sweep.cache import SweepCache

        counting = CountingSimulator(GpuSimulator("interval"))
        cache = SweepCache(tmp_path / "cache")
        query = GridQuery(archetype_kernels[0], small_space)

        async def scenario():
            batcher = await make_batcher(counting, cache=cache)
            try:
                first = await batcher.submit(query)
                second = await batcher.submit(query)
                return first, second
            finally:
                await batcher.stop()

        first, second = run(scenario())
        assert not first.from_cache
        assert second.from_cache
        # The second answer never touched the engine...
        assert counting.grid_calls + counting.study_calls == 1
        assert cache.hits == 1 and cache.stores == 1
        # ...and is still bitwise identical, time tensor included.
        np.testing.assert_array_equal(
            second.items_per_second, first.items_per_second
        )
        np.testing.assert_array_equal(second.time_s, first.time_s)


class TestFaultIsolation:
    def test_grid_fault_does_not_poison_batch_peers(
        self, archetype_kernels, small_space
    ):
        from repro.sweep.faults import FaultKind, FaultSpec, FaultyEngine

        poisoned = archetype_kernels[0]
        healthy = archetype_kernels[1:4]
        direct = GpuSimulator("interval")
        engine = FaultyEngine(
            GpuSimulator("interval"),
            [FaultSpec(
                kind=FaultKind.RAISE, kernel_name=poisoned.full_name,
            )],
        )
        queries = [GridQuery(k, small_space) for k in [poisoned] + healthy]

        async def scenario():
            batcher = await make_batcher(
                engine, max_wait_ms=50.0, max_batch=16
            )
            try:
                return await asyncio.gather(
                    *(batcher.submit(q) for q in queries),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        assert isinstance(results[0], SimulationError)
        assert poisoned.full_name in str(results[0])
        for kernel, result in zip(healthy, results[1:]):
            expected = direct.simulate_grid(kernel, small_space)
            np.testing.assert_array_equal(
                result.items_per_second, expected.items_per_second
            )

    def test_point_fault_does_not_poison_batch_peers(
        self, archetype_kernels
    ):
        poisoned = archetype_kernels[0]
        healthy = archetype_kernels[1:4]
        direct = GpuSimulator("interval")
        engine = PoisonedPointSimulator(
            GpuSimulator("interval"), poisoned.full_name
        )
        queries = [
            PointQuery(k, W9100_LIKE) for k in [poisoned] + healthy
        ]

        async def scenario():
            batcher = await make_batcher(
                engine, max_wait_ms=50.0, max_batch=16
            )
            try:
                return await asyncio.gather(
                    *(batcher.submit(q) for q in queries),
                    return_exceptions=True,
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        assert isinstance(results[0], SimulationError)
        for kernel, result in zip(healthy, results[1:]):
            expected = direct.simulate(kernel, W9100_LIKE)
            assert result.time_s == float(expected.time_s)

    def test_study_failure_degrades_to_per_kernel_grids(
        self, archetype_kernels, small_space
    ):
        direct = GpuSimulator("interval")
        engine = BrokenStudySimulator(GpuSimulator("interval"))
        kernels = archetype_kernels[:3]
        queries = [GridQuery(k, small_space) for k in kernels]

        async def scenario():
            batcher = await make_batcher(
                engine, max_wait_ms=50.0, max_batch=16
            )
            try:
                return await asyncio.gather(
                    *(batcher.submit(q) for q in queries)
                )
            finally:
                await batcher.stop()

        results = run(scenario())
        assert engine.study_attempts == 1  # coalescing was tried
        for kernel, result in zip(kernels, results):
            expected = direct.simulate_grid(kernel, small_space)
            np.testing.assert_array_equal(
                result.items_per_second, expected.items_per_second
            )

    def test_fault_errors_do_not_leak_between_batches(
        self, archetype_kernels
    ):
        """A failure in one batch leaves the batcher fully serviceable."""
        poisoned = archetype_kernels[0]
        engine = PoisonedPointSimulator(
            GpuSimulator("interval"), poisoned.full_name
        )

        async def scenario():
            batcher = await make_batcher(engine)
            try:
                with pytest.raises(SimulationError):
                    await batcher.submit(
                        PointQuery(poisoned, W9100_LIKE)
                    )
                return await batcher.submit(
                    PointQuery(archetype_kernels[1], W9100_LIKE)
                )
            finally:
                await batcher.stop()

        result = run(scenario())
        assert result.items_per_second > 0


class TestBackpressure:
    def test_full_admission_queue_overloads(self, archetype_kernels):
        engine = GatedSimulator(GpuSimulator("interval"))
        kernels = archetype_kernels

        async def scenario():
            batcher = await make_batcher(
                engine, max_batch=1, max_wait_ms=0.0, queue_limit=2
            )
            # The gated engine wedges the worker, so admitted queries
            # pile up: one in the in-flight batch, queue_limit in the
            # admission queue. Keep submitting until one is shed —
            # which exact submission trips the limit depends on how
            # far the collector got, but the limit itself is hard.
            admitted = []
            shed = None
            for attempt in range(10):
                task = asyncio.ensure_future(
                    batcher.submit(
                        PointQuery(
                            kernels[attempt % len(kernels)], W9100_LIKE
                        )
                    )
                )
                await asyncio.sleep(0.02)
                if task.done() and isinstance(
                    task.exception(), OverloadError
                ):
                    shed = task.exception()
                    break
                admitted.append(task)
            assert isinstance(shed, OverloadError)
            # Bounded admission: in-flight batch + queue, nothing more.
            assert len(admitted) <= 2 + batcher._queue_limit
            engine.gate.set()
            results = await asyncio.gather(*admitted)
            await batcher.stop()
            return results

        results = run(scenario())
        assert results
        assert all(r.items_per_second > 0 for r in results)

    def test_per_request_timeout(self, archetype_kernels):
        engine = GatedSimulator(GpuSimulator("interval"))

        async def scenario():
            batcher = await make_batcher(engine, max_batch=1)
            try:
                with pytest.raises(ServiceTimeoutError):
                    await batcher.submit(
                        PointQuery(archetype_kernels[0], W9100_LIKE),
                        timeout=0.05,
                    )
            finally:
                engine.gate.set()
                await batcher.stop()

        run(scenario())

    def test_drain_answers_everything_admitted(self, archetype_kernels):
        counting = CountingSimulator(GpuSimulator("interval"))
        queries = [
            PointQuery(k, W9100_LIKE) for k in archetype_kernels[:6]
        ]

        async def scenario():
            batcher = await make_batcher(counting, max_wait_ms=50.0)
            tasks = [
                asyncio.ensure_future(batcher.submit(q))
                for q in queries
            ]
            await asyncio.sleep(0)  # queries admitted, none answered
            await batcher.stop(drain=True)
            results = await asyncio.gather(*tasks)
            with pytest.raises(ServiceClosedError):
                await batcher.submit(queries[0])
            return results

        results = run(scenario())
        assert len(results) == len(queries)
        assert all(r.items_per_second > 0 for r in results)

    def test_stop_without_drain_fails_queued_queries(
        self, archetype_kernels
    ):
        engine = GatedSimulator(GpuSimulator("interval"))

        async def scenario():
            batcher = await make_batcher(
                engine, max_batch=1, max_wait_ms=0.0, queue_limit=8
            )
            inflight = asyncio.ensure_future(
                batcher.submit(
                    PointQuery(archetype_kernels[0], W9100_LIKE)
                )
            )
            queued = [
                asyncio.ensure_future(
                    batcher.submit(
                        PointQuery(archetype_kernels[i], W9100_LIKE)
                    )
                )
                for i in (1, 2)
            ]
            await asyncio.sleep(0.1)
            stopping = asyncio.ensure_future(batcher.stop(drain=False))
            await asyncio.sleep(0.05)
            for task in queued:
                with pytest.raises(ServiceClosedError):
                    await task
            engine.gate.set()
            await stopping
            # The already-dispatched query still completes normally.
            result = await inflight
            return result

        result = run(scenario())
        assert result.items_per_second > 0


class TestDeadlines:
    """Absolute-deadline propagation through the batcher."""

    def test_expired_deadline_refused_at_admission(
        self, archetype_kernels
    ):
        from repro.service.batcher import DeadlineExceededError

        async def scenario():
            batcher = await make_batcher(GpuSimulator("interval"))
            try:
                loop = asyncio.get_running_loop()
                with pytest.raises(DeadlineExceededError):
                    await batcher.submit(
                        PointQuery(archetype_kernels[0], W9100_LIKE),
                        deadline=loop.time() - 0.001,
                    )
            finally:
                await batcher.stop(drain=False)

        run(scenario())

    def test_deadline_beats_timeout_when_earlier(
        self, archetype_kernels
    ):
        from repro.service.batcher import DeadlineExceededError

        engine = GatedSimulator(GpuSimulator("interval"))

        async def scenario():
            batcher = await make_batcher(
                engine, max_batch=1, max_wait_ms=0.0
            )
            try:
                loop = asyncio.get_running_loop()
                with pytest.raises(DeadlineExceededError):
                    await batcher.submit(
                        PointQuery(archetype_kernels[0], W9100_LIKE),
                        timeout=30.0,
                        deadline=loop.time() + 0.05,
                    )
            finally:
                engine.gate.set()
                await batcher.stop(drain=False)

        run(scenario())

    def test_plain_timeout_still_raises_timeout_error(
        self, archetype_kernels
    ):
        from repro.service.batcher import DeadlineExceededError

        engine = GatedSimulator(GpuSimulator("interval"))

        async def scenario():
            batcher = await make_batcher(
                engine, max_batch=1, max_wait_ms=0.0
            )
            try:
                with pytest.raises(ServiceTimeoutError) as excinfo:
                    await batcher.submit(
                        PointQuery(archetype_kernels[0], W9100_LIKE),
                        timeout=0.05,
                    )
                assert not isinstance(
                    excinfo.value, DeadlineExceededError
                )
            finally:
                engine.gate.set()
                await batcher.stop(drain=False)

        run(scenario())

    def test_expired_entries_are_cancelled_not_computed(
        self, archetype_kernels
    ):
        """A query whose deadline passes while it waits behind a slow
        batch is dropped before evaluation: the engine never sees it."""
        from repro.service.batcher import DeadlineExceededError

        engine = GatedSimulator(GpuSimulator("interval"))
        counted = CountingSimulator(engine)

        async def scenario():
            batcher = await make_batcher(
                counted, max_batch=1, max_wait_ms=0.0
            )
            loop = asyncio.get_running_loop()
            # First query occupies the engine thread at the gate.
            blocker = asyncio.ensure_future(
                batcher.submit(
                    PointQuery(archetype_kernels[0], W9100_LIKE)
                )
            )
            await asyncio.sleep(0.05)
            # Second query's deadline expires while it queues.
            doomed = asyncio.ensure_future(
                batcher.submit(
                    PointQuery(archetype_kernels[1], W9100_LIKE),
                    deadline=loop.time() + 0.05,
                )
            )
            await asyncio.sleep(0.2)
            engine.gate.set()
            result = await blocker
            with pytest.raises(DeadlineExceededError):
                await doomed
            await batcher.stop(drain=True)
            return result, counted.point_calls

        result, point_calls = run(scenario())
        assert result.items_per_second > 0
        assert point_calls == 1, "expired query must not be evaluated"

    def test_deadline_metric_is_counted(self, archetype_kernels):
        from repro.service.batcher import DeadlineExceededError
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()

        async def scenario():
            batcher = await make_batcher(
                GpuSimulator("interval"), metrics=metrics
            )
            try:
                loop = asyncio.get_running_loop()
                with pytest.raises(DeadlineExceededError):
                    await batcher.submit(
                        PointQuery(archetype_kernels[0], W9100_LIKE),
                        deadline=loop.time() - 1.0,
                    )
            finally:
                await batcher.stop(drain=False)

        run(scenario())
        assert metrics.deadline_exceeded.value() == 1
