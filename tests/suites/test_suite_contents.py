"""Behavioural sanity of the authored catalog.

These tests pin the catalog's *intent*: the populations of behaviours
each suite was authored to contribute (graph suites bring latency
chains, SDK samples bring regular compute, 2009-era suites bring tiny
launches). They guard against edits that would silently hollow out the
study's behavioural coverage.
"""


from repro.suites import all_kernels, suite


def characteristics(suite_name):
    return [k.characteristics for k in all_kernels(suite_name)]


class TestBehaviouralCoverage:
    def test_catalog_contains_dependence_chain_kernels(self):
        chains = [
            k for k in all_kernels()
            if k.characteristics.dependent_access_fraction > 0.5
        ]
        assert len(chains) >= 10

    def test_catalog_contains_contended_atomics(self):
        atomics = [
            k for k in all_kernels()
            if k.characteristics.atomic_contention > 0.1
        ]
        assert len(atomics) >= 10

    def test_catalog_contains_small_launches(self):
        """The paper's benchmark critique requires under-filling
        launches: kernels with fewer workgroups than the 44 CUs."""
        small = [
            k for k in all_kernels() if k.geometry.num_workgroups < 44
        ]
        assert len(small) >= 20

    def test_catalog_contains_large_launches(self):
        large = [
            k for k in all_kernels() if k.geometry.num_workgroups >= 4096
        ]
        assert len(large) >= 50

    def test_pannotia_is_irregular(self):
        """Graph suite: majority of kernels divergent or chain-bound."""
        irregular = [
            ch for ch in characteristics("pannotia")
            if ch.dependent_access_fraction > 0.3
            or ch.simd_efficiency < 0.6
            or ch.atomic_contention > 0.2
        ]
        assert len(irregular) >= 10

    def test_amdapp_is_mostly_regular(self):
        regular = [
            ch for ch in characteristics("amdapp")
            if ch.simd_efficiency >= 0.9
        ]
        assert len(regular) >= 20

    def test_proxyapps_launch_at_modern_scale(self):
        sizes = [k.geometry.global_size for k in all_kernels("proxyapps")]
        assert sorted(sizes)[len(sizes) // 2] >= 1 << 19

    def test_polybench_problems_are_small(self):
        """PolyBench's default inputs: cache-size footprints or tiny
        grids for at least half the kernels."""
        small = [
            k for k in all_kernels("polybench")
            if k.characteristics.footprint_bytes <= 1 << 20
            or k.geometry.num_workgroups < 44
        ]
        assert len(small) >= 13

    def test_rodinia_has_wavefront_parallel_kernels(self):
        nw = suite("rodinia").program("nw")
        for kernel in nw.kernels:
            assert kernel.geometry.num_workgroups <= 16


class TestNamingRealism:
    def test_programs_named_after_real_benchmarks(self):
        rodinia_programs = {p.name for p in suite("rodinia").programs}
        for expected in ("bfs", "hotspot", "kmeans", "nw", "srad"):
            assert expected in rodinia_programs

    def test_parboil_roster_matches_real_suite(self):
        names = {p.name for p in suite("parboil").programs}
        assert names == {
            "bfs", "cutcp", "histo", "lbm", "mri_gridding", "mri_q",
            "sad", "sgemm", "spmv", "stencil", "tpacf",
        }
