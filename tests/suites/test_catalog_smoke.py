"""Catalog-wide smoke tests: every kernel runs everywhere.

The suite catalog is authored data; these tests guarantee that every
one of the 267 kernels is simulable at the extreme corners of the
configuration space with sane outputs — the property the full sweep
depends on.
"""

import math


from repro.gpu import Engine, GpuSimulator, HardwareConfig
from repro.power import EnergyModel

CORNERS = (
    HardwareConfig(4, 200.0, 150.0),
    HardwareConfig(44, 1000.0, 1250.0),
    HardwareConfig(4, 1000.0, 150.0),
    HardwareConfig(44, 200.0, 1250.0),
)


class TestEveryKernelSimulates:
    def test_interval_engine_all_corners(self, catalog_kernels):
        simulator = GpuSimulator(Engine.INTERVAL)
        for kernel in catalog_kernels:
            for config in CORNERS:
                time_s = simulator.time_s(kernel, config)
                assert math.isfinite(time_s) and time_s > 0, (
                    kernel.full_name,
                    config.label(),
                )

    def test_event_engine_sampled(self, catalog_kernels):
        simulator = GpuSimulator(Engine.EVENT)
        for kernel in catalog_kernels[::10]:
            time_s = simulator.time_s(kernel, CORNERS[1])
            assert math.isfinite(time_s) and time_s > 0, kernel.full_name

    def test_flagship_never_slower_than_embedded(self, catalog_kernels):
        """Scaling can be non-monotone along single axes, but the full
        flagship must beat the smallest corner for every kernel (all
        three knobs at 5-11x cannot jointly lose)."""
        simulator = GpuSimulator(Engine.INTERVAL)
        for kernel in catalog_kernels:
            small = simulator.time_s(kernel, CORNERS[0])
            large = simulator.time_s(kernel, CORNERS[1])
            assert large < small, kernel.full_name

    def test_energy_model_all_kernels_at_flagship(self, catalog_kernels):
        model = EnergyModel()
        for kernel in catalog_kernels:
            result = model.evaluate(kernel, CORNERS[1])
            assert 20.0 < result.power_w < 350.0, kernel.full_name
            assert result.energy_j > 0


class TestCatalogDiversity:
    def test_each_suite_contributes_multiple_categories(
        self, paper_taxonomy
    ):
        for suite, counts in paper_taxonomy.by_suite().items():
            populated = [c for c, n in counts.items() if n > 0]
            assert len(populated) >= 3, suite

    def test_no_two_kernels_identical(self, catalog_kernels):
        """Catalog kernels must be genuinely distinct workloads, not
        copy-paste entries: (characteristics, geometry) pairs are
        unique across all 267."""
        signatures = {
            (kernel.characteristics, kernel.geometry)
            for kernel in catalog_kernels
        }
        # Allow the legitimately identical phase pairs (forward/inverse
        # DCT and FFT, the two NW diagonals, PolyBench's repeated
        # matrix-multiply phases...) but not wholesale duplication.
        assert len(signatures) >= len(catalog_kernels) - 12
