"""Registry: the paper's 97/267 accounting and lookup helpers."""

import pytest

from repro.errors import SuiteError
from repro.suites import all_kernels, all_suites, catalog_totals, suite
from repro.suites.registry import (
    EXPECTED_KERNELS,
    EXPECTED_PROGRAMS,
    kernel_by_name,
    suite_names,
)


class TestPaperTotals:
    def test_exactly_97_programs(self):
        assert catalog_totals()["total"][0] == EXPECTED_PROGRAMS == 97

    def test_exactly_267_kernels(self):
        assert catalog_totals()["total"][1] == EXPECTED_KERNELS == 267

    def test_eight_suites(self):
        assert len(all_suites()) == 8

    def test_kernel_names_globally_unique(self):
        names = [k.full_name for k in all_kernels()]
        assert len(set(names)) == len(names)

    def test_every_kernel_has_suite_and_program(self):
        for kernel in all_kernels():
            assert kernel.suite
            assert kernel.program
            assert kernel.full_name.startswith(kernel.suite + "/")


class TestLookups:
    def test_suite_lookup(self):
        rodinia = suite("rodinia")
        assert rodinia.program_count == 18
        assert rodinia.kernel_count == 55

    def test_suite_lookup_missing(self):
        with pytest.raises(SuiteError):
            suite("spec2006")

    def test_suite_names_order_stable(self):
        assert suite_names() == [s.name for s in all_suites()]

    def test_all_kernels_filtered_by_suite(self):
        pannotia_kernels = all_kernels("pannotia")
        assert len(pannotia_kernels) == 30
        assert all(k.suite == "pannotia" for k in pannotia_kernels)

    def test_kernel_by_name(self):
        kernel = kernel_by_name("rodinia/bfs.kernel1")
        assert kernel.program == "bfs"

    def test_kernel_by_name_missing(self):
        with pytest.raises(SuiteError):
            kernel_by_name("rodinia/bfs.kernel99")

    def test_all_suites_cached(self):
        assert all_suites() is all_suites()


class TestPerSuiteCounts:
    EXPECTED = {
        "amdapp": (16, 28),
        "opendwarfs": (12, 30),
        "pannotia": (8, 30),
        "parboil": (11, 35),
        "polybench": (12, 25),
        "proxyapps": (8, 19),
        "rodinia": (18, 55),
        "shoc": (12, 45),
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_suite_counts(self, name):
        s = suite(name)
        assert (s.program_count, s.kernel_count) == self.EXPECTED[name]
