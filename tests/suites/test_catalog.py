"""Catalog structures: Program/Suite invariants and the builder."""

import pytest

from repro.errors import SuiteError
from repro.kernels import compute_kernel
from repro.suites import Program, ProgramBuilder


def kernels(program, suite, names):
    return tuple(
        compute_kernel(program, name, suite=suite) for name in names
    )


class TestProgram:
    def test_valid_program(self):
        program = Program("p", "s", kernels("p", "s", ["a", "b"]))
        assert program.kernel_count == 2

    def test_rejects_empty_name(self):
        with pytest.raises(SuiteError):
            Program("", "s", kernels("p", "s", ["a"]))

    def test_rejects_no_kernels(self):
        with pytest.raises(SuiteError):
            Program("p", "s", ())

    def test_rejects_duplicate_kernel_names(self):
        with pytest.raises(SuiteError):
            Program("p", "s", kernels("p", "s", ["a", "a"]))

    def test_rejects_mismatched_program_field(self):
        with pytest.raises(SuiteError):
            Program("p", "s", kernels("other", "s", ["a"]))

    def test_rejects_mismatched_suite_field(self):
        with pytest.raises(SuiteError):
            Program("p", "s", kernels("p", "other", ["a"]))


class TestSuite:
    def make_suite(self):
        b = ProgramBuilder("s")
        b.program("p1", *kernels("p1", "s", ["a", "b"]))
        b.program("p2", *kernels("p2", "s", ["c"]))
        return b.finish(description="test")

    def test_counts(self):
        suite = self.make_suite()
        assert suite.program_count == 2
        assert suite.kernel_count == 3

    def test_kernels_iterate_in_order(self):
        names = [k.name for k in self.make_suite().kernels()]
        assert names == ["a", "b", "c"]

    def test_program_lookup(self):
        suite = self.make_suite()
        assert suite.program("p2").kernel_count == 1

    def test_program_lookup_missing(self):
        with pytest.raises(SuiteError):
            self.make_suite().program("nope")

    def test_rejects_duplicate_programs(self):
        b = ProgramBuilder("s")
        b.program("p", *kernels("p", "s", ["a"]))
        b.program("p", *kernels("p", "s", ["b"]))
        with pytest.raises(SuiteError):
            b.finish()

    def test_rejects_empty_suite(self):
        with pytest.raises(SuiteError):
            ProgramBuilder("s").finish()


class TestDescriptions:
    def test_every_program_documented(self):
        from repro.suites import all_suites

        for s in all_suites():
            for program in s.programs:
                assert program.description.strip(), (
                    f"{s.name}/{program.name} lacks a description"
                )

    def test_descriptions_are_specific(self):
        """Descriptions must describe the computation, not boilerplate:
        they are distinct across the catalog."""
        from repro.suites import all_suites

        texts = [
            p.description for s in all_suites() for p in s.programs
        ]
        assert len(set(texts)) == len(texts)
