"""Energy accounting and DVFS optimisation."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.gpu import W9100_LIKE
from repro.kernels import (
    compute_kernel,
    latency_kernel,
    streaming_kernel,
    tiny_kernel,
)
from repro.power import DvfsOptimizer, EnergyModel, Objective
from repro.sweep import reduced_space


@pytest.fixture(scope="module")
def energy_model():
    return EnergyModel()


@pytest.fixture(scope="module")
def optimizer():
    return DvfsOptimizer(space=reduced_space(2, 2, 2))


class TestEnergyResult:
    def test_energy_is_power_times_time(self, energy_model):
        result = energy_model.evaluate(compute_kernel("c"), W9100_LIKE)
        assert result.energy_j == pytest.approx(
            result.time_s * result.power_w
        )
        assert result.edp == pytest.approx(
            result.energy_j * result.time_s
        )

    def test_activities_are_fractions(self, energy_model):
        for builder in (compute_kernel, streaming_kernel, tiny_kernel):
            result = energy_model.evaluate(builder("k"), W9100_LIKE)
            assert 0.0 <= result.compute_activity <= 1.0
            assert 0.0 <= result.memory_activity <= 1.0

    def test_compute_kernel_busy_compute_domain(self, energy_model):
        result = energy_model.evaluate(compute_kernel("c"), W9100_LIKE)
        assert result.compute_activity > 0.5
        assert result.compute_activity > result.memory_activity

    def test_streaming_kernel_busy_memory_domain(self, energy_model):
        result = energy_model.evaluate(streaming_kernel("s"), W9100_LIKE)
        assert result.memory_activity > 0.5

    def test_items_per_joule_positive(self, energy_model):
        result = energy_model.evaluate(streaming_kernel("s"), W9100_LIKE)
        assert result.items_per_joule > 0

    def test_energy_cube_shape(self, energy_model):
        space = reduced_space(4, 4, 4)
        cube = energy_model.energy_cube(compute_kernel("c"), space)
        assert cube.shape == space.shape
        assert (cube > 0).all()

    def test_time_and_energy_cubes_consistent(self, energy_model):
        space = reduced_space(4, 4, 4)
        kernel = streaming_kernel("s")
        time_cube, energy_cube = energy_model.time_and_energy_cubes(
            kernel, space
        )
        assert time_cube.shape == energy_cube.shape == space.shape
        # Energy >= idle-power x time everywhere.
        assert (energy_cube > 10.0 * time_cube).all()


class TestEnergySurfaces:
    """The vectorized grid path against the scalar point loop."""

    def test_surfaces_match_pointwise_evaluate(self, energy_model):
        """The batch path reproduces the per-point loop to 1e-12
        relative on every surface, for every kernel shape."""
        space = reduced_space(4, 4, 4)
        for builder in (compute_kernel, streaming_kernel,
                        latency_kernel, tiny_kernel):
            kernel = builder("k")
            surface = energy_model.surfaces(kernel, space)
            n_cu, n_eng, n_mem = space.shape
            for c in range(n_cu):
                for e in range(n_eng):
                    for m in range(n_mem):
                        point = energy_model.evaluate(
                            kernel, space.config(c, e, m)
                        )
                        assert surface.time_s[c, e, m] == pytest.approx(
                            point.time_s, rel=1e-12
                        )
                        assert surface.power_w[c, e, m] == pytest.approx(
                            point.power_w, rel=1e-12
                        )
                        assert surface.energy_j[c, e, m] == pytest.approx(
                            point.energy_j, rel=1e-12
                        )

    def test_surface_derived_quantities(self, energy_model):
        space = reduced_space(4, 4, 4)
        surface = energy_model.surfaces(streaming_kernel("s"), space)
        assert surface.time_s.shape == space.shape
        assert np.array_equal(
            surface.edp, surface.energy_j * surface.time_s
        )
        assert (surface.items_per_second > 0).all()
        assert (surface.items_per_joule > 0).all()

    def test_result_at_matches_the_arrays(self, energy_model):
        space = reduced_space(4, 4, 4)
        surface = energy_model.surfaces(compute_kernel("c"), space)
        point = surface.result_at(1, 2, 0)
        assert point.time_s == surface.time_s[1, 2, 0]
        assert point.energy_j == pytest.approx(
            surface.energy_j[1, 2, 0]
        )
        assert point.config == space.config(1, 2, 0)

    def test_engine_and_simulator_mutually_exclusive(self):
        from repro.gpu.simulator import GpuSimulator

        with pytest.raises(ConfigurationError):
            EnergyModel(
                engine="interval",
                simulator=GpuSimulator("interval"),
            )


class TestOptimizer:
    def test_max_perf_objective_matches_fastest_point(self, optimizer):
        kernel = compute_kernel("c")
        point = optimizer.optimise(kernel, Objective.MAX_PERF)
        assert point.config.cu_count == 44
        assert point.config.engine_mhz == 1000.0

    def test_min_energy_never_worse_than_flagship(self, optimizer):
        for builder in (compute_kernel, streaming_kernel, latency_kernel,
                        tiny_kernel):
            kernel = builder("k")
            saving = optimizer.energy_saving_vs_flagship(kernel)
            assert saving >= -1e-9

    def test_plateau_kernel_saves_substantially(self, optimizer):
        """A launch-overhead kernel gains nothing from high states, so
        downclocking saves a large energy fraction."""
        saving = optimizer.energy_saving_vs_flagship(tiny_kernel("t"))
        assert saving > 0.2

    def test_streaming_kernel_keeps_memory_clock(self, optimizer):
        point = optimizer.optimise(
            streaming_kernel("s"), Objective.MIN_ENERGY
        )
        # The memory knob pays for itself; the optimum keeps it high.
        assert point.config.memory_mhz >= 975.0

    def test_power_cap_restricts_choice(self, optimizer):
        kernel = compute_kernel("c")
        unlimited = optimizer.optimise(kernel, Objective.MAX_PERF)
        capped = optimizer.optimise(
            kernel, Objective.MAX_PERF, power_cap_w=120.0
        )
        assert capped.time_s >= unlimited.time_s
        energy_model = EnergyModel()
        result = energy_model.evaluate(kernel, capped.config)
        assert result.power_w <= 120.0

    def test_unsatisfiable_cap_raises(self, optimizer):
        with pytest.raises(AnalysisError):
            optimizer.optimise(
                compute_kernel("c"), Objective.MAX_PERF, power_cap_w=1.0
            )
