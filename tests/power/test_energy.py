"""Energy accounting and DVFS optimisation."""

import pytest

from repro.errors import AnalysisError
from repro.gpu import W9100_LIKE
from repro.kernels import (
    compute_kernel,
    latency_kernel,
    streaming_kernel,
    tiny_kernel,
)
from repro.power import DvfsOptimizer, EnergyModel, Objective
from repro.sweep import reduced_space


@pytest.fixture(scope="module")
def energy_model():
    return EnergyModel()


@pytest.fixture(scope="module")
def optimizer():
    return DvfsOptimizer(space=reduced_space(2, 2, 2))


class TestEnergyResult:
    def test_energy_is_power_times_time(self, energy_model):
        result = energy_model.evaluate(compute_kernel("c"), W9100_LIKE)
        assert result.energy_j == pytest.approx(
            result.time_s * result.power_w
        )
        assert result.edp == pytest.approx(
            result.energy_j * result.time_s
        )

    def test_activities_are_fractions(self, energy_model):
        for builder in (compute_kernel, streaming_kernel, tiny_kernel):
            result = energy_model.evaluate(builder("k"), W9100_LIKE)
            assert 0.0 <= result.compute_activity <= 1.0
            assert 0.0 <= result.memory_activity <= 1.0

    def test_compute_kernel_busy_compute_domain(self, energy_model):
        result = energy_model.evaluate(compute_kernel("c"), W9100_LIKE)
        assert result.compute_activity > 0.5
        assert result.compute_activity > result.memory_activity

    def test_streaming_kernel_busy_memory_domain(self, energy_model):
        result = energy_model.evaluate(streaming_kernel("s"), W9100_LIKE)
        assert result.memory_activity > 0.5

    def test_items_per_joule_positive(self, energy_model):
        result = energy_model.evaluate(streaming_kernel("s"), W9100_LIKE)
        assert result.items_per_joule > 0

    def test_energy_cube_shape(self, energy_model):
        space = reduced_space(4, 4, 4)
        cube = energy_model.energy_cube(compute_kernel("c"), space)
        assert cube.shape == space.shape
        assert (cube > 0).all()

    def test_time_and_energy_cubes_consistent(self, energy_model):
        space = reduced_space(4, 4, 4)
        kernel = streaming_kernel("s")
        time_cube, energy_cube = energy_model.time_and_energy_cubes(
            kernel, space
        )
        assert time_cube.shape == energy_cube.shape == space.shape
        # Energy >= idle-power x time everywhere.
        assert (energy_cube > 10.0 * time_cube).all()


class TestOptimizer:
    def test_max_perf_objective_matches_fastest_point(self, optimizer):
        kernel = compute_kernel("c")
        point = optimizer.optimise(kernel, Objective.MAX_PERF)
        assert point.config.cu_count == 44
        assert point.config.engine_mhz == 1000.0

    def test_min_energy_never_worse_than_flagship(self, optimizer):
        for builder in (compute_kernel, streaming_kernel, latency_kernel,
                        tiny_kernel):
            kernel = builder("k")
            saving = optimizer.energy_saving_vs_flagship(kernel)
            assert saving >= -1e-9

    def test_plateau_kernel_saves_substantially(self, optimizer):
        """A launch-overhead kernel gains nothing from high states, so
        downclocking saves a large energy fraction."""
        saving = optimizer.energy_saving_vs_flagship(tiny_kernel("t"))
        assert saving > 0.2

    def test_streaming_kernel_keeps_memory_clock(self, optimizer):
        point = optimizer.optimise(
            streaming_kernel("s"), Objective.MIN_ENERGY
        )
        # The memory knob pays for itself; the optimum keeps it high.
        assert point.config.memory_mhz >= 975.0

    def test_power_cap_restricts_choice(self, optimizer):
        kernel = compute_kernel("c")
        unlimited = optimizer.optimise(kernel, Objective.MAX_PERF)
        capped = optimizer.optimise(
            kernel, Objective.MAX_PERF, power_cap_w=120.0
        )
        assert capped.time_s >= unlimited.time_s
        energy_model = EnergyModel()
        result = energy_model.evaluate(kernel, capped.config)
        assert result.power_w <= 120.0

    def test_unsatisfiable_cap_raises(self, optimizer):
        with pytest.raises(AnalysisError):
            optimizer.optimise(
                compute_kernel("c"), Objective.MAX_PERF, power_cap_w=1.0
            )
