"""Power model: voltage curves, breakdown, calibration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu import EMBEDDED, W9100_LIKE, HardwareConfig
from repro.power import PowerModel, VoltageCurve
from repro.sweep import reduced_space


@pytest.fixture
def model():
    return PowerModel()


class TestVoltageCurve:
    def test_endpoints(self):
        curve = VoltageCurve(200.0, 1000.0, 0.9, 1.2)
        assert curve.volts(200.0) == pytest.approx(0.9)
        assert curve.volts(1000.0) == pytest.approx(1.2)

    def test_interpolates_linearly(self):
        curve = VoltageCurve(200.0, 1000.0, 0.9, 1.2)
        assert curve.volts(600.0) == pytest.approx(1.05)

    def test_clamps_outside_range(self):
        curve = VoltageCurve(200.0, 1000.0, 0.9, 1.2)
        assert curve.volts(100.0) == pytest.approx(0.9)
        assert curve.volts(2000.0) == pytest.approx(1.2)

    def test_rejects_invalid_ranges(self):
        with pytest.raises(ConfigurationError):
            VoltageCurve(1000.0, 200.0)
        with pytest.raises(ConfigurationError):
            VoltageCurve(200.0, 1000.0, 1.2, 0.9)

    def test_clamped_volts_are_continuous_at_the_endpoints(self):
        """Clamping outside the curve's range never produces a jump:
        the voltage just beyond an endpoint equals the endpoint's."""
        curve = VoltageCurve(200.0, 1000.0, 0.9, 1.2)
        assert curve.volts(199.999) == curve.volts(200.0)
        assert curve.volts(1000.001) == curve.volts(1000.0)

    def test_degenerate_frequency_range_rejected(self):
        """A zero-width curve (min == max) is rejected — interpolation
        over it would divide by zero."""
        with pytest.raises(ConfigurationError):
            VoltageCurve(500.0, 500.0, 1.0, 1.0)

    def test_flat_voltage_range_accepted(self):
        """Equal min/max *volts* is fine: a flat curve over a real
        frequency span interpolates to the constant."""
        curve = VoltageCurve(200.0, 1000.0, 1.0, 1.0)
        assert curve.volts(600.0) == pytest.approx(1.0)


class TestCalibration:
    def test_flagship_near_board_tdp(self, model):
        """Full activity at the flagship lands near the W9100's ~275 W."""
        power = model.board_power_w(W9100_LIKE)
        assert 230.0 < power < 330.0

    def test_embedded_idle_is_tens_of_watts(self, model):
        power = model.board_power_w(EMBEDDED, 0.0, 0.0)
        assert 10.0 < power < 60.0

    def test_span_covers_an_order_of_magnitude(self, model):
        idle = model.board_power_w(EMBEDDED, 0.0, 0.0)
        peak = model.board_power_w(W9100_LIKE)
        assert peak / idle > 5.0


class TestScalingStructure:
    def test_power_superlinear_in_engine_clock(self, model):
        """V rises with f, so dynamic power grows faster than f."""
        low = model.breakdown(HardwareConfig(44, 500.0, 1250.0))
        high = model.breakdown(HardwareConfig(44, 1000.0, 1250.0))
        assert (
            high.compute_dynamic_w / low.compute_dynamic_w > 2.0
        )

    def test_power_grows_with_cus(self, model):
        small = model.board_power_w(HardwareConfig(4, 1000.0, 1250.0))
        large = model.board_power_w(HardwareConfig(44, 1000.0, 1250.0))
        assert large > 2.0 * small

    def test_idle_kernel_pays_only_static(self, model):
        breakdown = model.breakdown(W9100_LIKE, 0.0, 0.0)
        assert breakdown.dynamic_w == 0.0
        assert breakdown.static_w > 0.0
        assert breakdown.total_w == pytest.approx(breakdown.static_w)

    def test_memory_activity_only_charges_memory_domain(self, model):
        mem_only = model.breakdown(W9100_LIKE, 0.0, 1.0)
        assert mem_only.compute_dynamic_w == 0.0
        assert mem_only.memory_dynamic_w > 0.0

    def test_activity_bounds_validated(self, model):
        with pytest.raises(ConfigurationError):
            model.breakdown(W9100_LIKE, compute_activity=1.5)
        with pytest.raises(ConfigurationError):
            model.breakdown(W9100_LIKE, memory_activity=-0.1)

    def test_board_power_rejects_out_of_range_activities(self, model):
        with pytest.raises(ConfigurationError):
            model.board_power_w(W9100_LIKE, compute_activity=-0.01)
        with pytest.raises(ConfigurationError):
            model.board_power_w(W9100_LIKE, memory_activity=1.01)

    def test_zero_cu_config_rejected(self):
        """The hardware-config layer refuses a zero-CU device before
        power can even be asked for it."""
        with pytest.raises(ConfigurationError):
            HardwareConfig(0, 1000.0, 1250.0)
        with pytest.raises(ConfigurationError):
            HardwareConfig(-4, 1000.0, 1250.0)

    def test_boundary_activities_accepted(self, model):
        """Exactly 0.0 and exactly 1.0 are legal activity factors."""
        idle = model.board_power_w(W9100_LIKE, 0.0, 0.0)
        busy = model.board_power_w(W9100_LIKE, 1.0, 1.0)
        assert busy > idle > 0.0


class TestSurfacePath:
    def test_board_power_surface_matches_scalar(self, model):
        """The vectorized grid path is bit-identical to per-point
        board_power_w at uniform activities."""
        space = reduced_space(2, 2, 2)
        for ca, ma in ((0.0, 0.0), (0.35, 0.8), (1.0, 1.0)):
            surface = model.board_power_surface(
                space,
                np.full(space.shape, ca),
                np.full(space.shape, ma),
            )
            n_cu, n_eng, n_mem = space.shape
            for c in range(n_cu):
                for e in range(n_eng):
                    for m in range(n_mem):
                        assert surface[c, e, m] == model.board_power_w(
                            space.config(c, e, m), ca, ma
                        )

    def test_board_power_surface_rejects_bad_activities(self, model):
        space = reduced_space(4, 4, 4)
        with pytest.raises(ConfigurationError):
            model.board_power_surface(
                space,
                np.full(space.shape, 1.5),
                np.zeros(space.shape),
            )
        with pytest.raises(ConfigurationError):
            model.board_power_surface(
                space,
                np.zeros(space.shape),
                np.full(space.shape, -0.5),
            )
