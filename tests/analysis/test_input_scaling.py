"""Input-scaling study: the paper's "new inputs" recommendation."""

import pytest

from repro.analysis import scale_input, study_input_scaling
from repro.errors import AnalysisError
from repro.kernels import (
    compute_kernel,
    limited_parallelism_kernel,
    tiny_kernel,
)
from repro.sweep import reduced_space


class TestScaleInput:
    def test_scales_launch_and_footprint(self):
        kernel = compute_kernel("c", global_size=1 << 16)
        scaled = scale_input(kernel, 8.0)
        assert scaled.geometry.global_size == 1 << 19
        assert scaled.characteristics.footprint_bytes == pytest.approx(
            8.0 * kernel.characteristics.footprint_bytes
        )

    def test_preserves_per_item_behaviour(self):
        kernel = compute_kernel("c")
        scaled = scale_input(kernel, 16.0)
        assert (
            scaled.characteristics.valu_ops_per_item
            == kernel.characteristics.valu_ops_per_item
        )
        assert scaled.geometry.workgroup_size == (
            kernel.geometry.workgroup_size
        )

    def test_caps_at_memory_capacity(self):
        kernel = compute_kernel("c", global_size=1 << 24)
        scaled = scale_input(kernel, 1024.0)
        assert scaled.geometry.global_size == 1 << 26

    def test_shrinking_inputs_allowed(self):
        kernel = compute_kernel("c", global_size=1 << 16)
        scaled = scale_input(kernel, 0.25)
        assert scaled.geometry.global_size == 1 << 14

    def test_rejects_non_positive_factor(self):
        with pytest.raises(AnalysisError):
            scale_input(compute_kernel("c"), 0.0)


class TestStudy:
    @pytest.fixture(scope="class")
    def starved_suite(self):
        return [
            limited_parallelism_kernel("lp1", suite="olde",
                                       num_workgroups=8),
            limited_parallelism_kernel("lp2", suite="olde",
                                       num_workgroups=12,
                                       valu_ops=600.0),
            tiny_kernel("tk", suite="olde", num_workgroups=16),
            compute_kernel("ck", suite="olde", global_size=1 << 18),
        ]

    def test_scalability_recovers_with_larger_inputs(self, starved_suite):
        study = study_input_scaling(
            starved_suite,
            factors=(1.0, 64.0, 1024.0),
            space=reduced_space(2, 2, 2),
        )
        first, *_, last = study.points
        assert first.starved_fraction > last.starved_fraction
        assert last.median_end_to_end_gain >= (
            first.median_end_to_end_gain
        )

    def test_recovery_factor_found(self, starved_suite):
        study = study_input_scaling(
            starved_suite,
            factors=(1.0, 64.0, 1024.0),
            space=reduced_space(2, 2, 2),
        )
        assert study.recovers
        assert study.recovery_factor() > 1.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            study_input_scaling([], factors=(1.0,))
        with pytest.raises(AnalysisError):
            study_input_scaling([compute_kernel("c")], factors=())
