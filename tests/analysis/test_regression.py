"""Power-law regression over scaling cubes."""

import pytest

from repro.analysis import fit_all, fit_kernel, summarise_by_category


class TestKernelFits:
    def test_compute_archetype_exponents(self, archetype_dataset):
        fit = fit_kernel(archetype_dataset, "probe/compute_probe.main")
        assert fit.cu_exponent > 0.7
        assert fit.engine_exponent > 0.7
        assert abs(fit.memory_exponent) < 0.15
        assert fit.r_squared > 0.9

    def test_streaming_archetype_exponents(self, archetype_dataset):
        fit = fit_kernel(archetype_dataset, "probe/streaming_probe.main")
        assert fit.memory_exponent > 0.5
        assert fit.memory_exponent > fit.engine_exponent

    def test_tiny_archetype_near_zero_exponents(self, archetype_dataset):
        fit = fit_kernel(archetype_dataset, "probe/tiny_probe.main")
        assert abs(fit.cu_exponent) < 0.2
        assert abs(fit.memory_exponent) < 0.2

    def test_prediction_at_fitted_point(self, archetype_dataset):
        name = "probe/compute_probe.main"
        fit = fit_kernel(archetype_dataset, name)
        space = archetype_dataset.space
        config = space.max_config
        predicted = fit.predict(
            config.cu_count, config.engine_mhz, config.memory_mhz
        )
        actual = archetype_dataset.kernel_cube(name)[-1, -1, -1]
        assert predicted == pytest.approx(actual, rel=0.5)

    def test_fit_all_covers_every_kernel(self, archetype_dataset):
        fits = fit_all(archetype_dataset)
        assert set(fits) == set(archetype_dataset.kernel_names)


class TestCategorySummaries:
    def test_categories_occupy_distinct_exponent_regions(
        self, paper_dataset, paper_taxonomy
    ):
        summaries = summarise_by_category(paper_dataset, paper_taxonomy)
        compute = summaries["compute_bound"]
        bandwidth = summaries["bandwidth_bound"]
        plateau = summaries["plateau"]
        assert compute.mean_cu_exponent > bandwidth.mean_cu_exponent
        assert bandwidth.mean_memory_exponent > (
            compute.mean_memory_exponent
        )
        assert plateau.mean_cu_exponent < 0.3
        assert plateau.mean_engine_exponent < compute.mean_engine_exponent

    def test_summary_counts_sum_to_total(
        self, paper_dataset, paper_taxonomy
    ):
        summaries = summarise_by_category(paper_dataset, paper_taxonomy)
        assert sum(s.kernel_count for s in summaries.values()) == 267
