"""Suite scalability critique."""

import pytest

from repro.errors import AnalysisError
from repro.analysis import (
    analyse_all_suites,
    analyse_suite,
    kernel_scalability,
    non_scaling_suites,
    useful_cu_histogram,
)


class TestKernelScalability:
    def test_compute_archetype_scales_to_full_device(
        self, archetype_dataset
    ):
        result = kernel_scalability(
            archetype_dataset, "probe/compute_probe.main"
        )
        assert result.scales_to_full_device
        assert result.useful_cus == 44

    def test_limited_parallelism_stalls_early(self, archetype_dataset):
        result = kernel_scalability(
            archetype_dataset, "probe/limited_parallelism_probe.main"
        )
        assert result.useful_cus <= 12
        assert not result.scales_to_full_device

    def test_utilised_fraction_bounds(self, archetype_dataset):
        for name in archetype_dataset.kernel_names:
            result = kernel_scalability(archetype_dataset, name)
            assert 0.0 < result.utilised_fraction <= 1.0


class TestSuiteAggregation:
    def test_unknown_suite_rejected(self, archetype_dataset):
        with pytest.raises(AnalysisError):
            analyse_suite(archetype_dataset, "spec2006")

    def test_all_suites_analysed(self, paper_dataset):
        results = analyse_all_suites(paper_dataset)
        assert len(results) == 8
        for result in results.values():
            assert result.kernel_count > 0
            assert 4 <= result.median_useful_cus <= 44

    def test_histogram_covers_all_kernels(self, paper_dataset):
        histogram = useful_cu_histogram(paper_dataset)
        assert sum(histogram.values()) == 267
        assert set(histogram) == set(
            int(c) for c in paper_dataset.space.cu_counts
        )


class TestPaperFinding:
    def test_some_suites_do_not_scale(self, paper_dataset,
                                      paper_taxonomy):
        """The headline critique: at least one (in practice several)
        mainstream suite fails to scale to modern GPU sizes — while
        the modern proxy apps pass the bar."""
        failing = non_scaling_suites(paper_dataset, paper_taxonomy)
        assert len(failing) >= 2
        assert "proxyapps" not in failing

    def test_starved_fraction_requires_taxonomy(self, paper_dataset,
                                                paper_taxonomy):
        with_tax = analyse_suite(paper_dataset, "rodinia",
                                 paper_taxonomy)
        without = analyse_suite(paper_dataset, "rodinia")
        assert with_tax.fraction_parallelism_starved is not None
        assert without.fraction_parallelism_starved is None

    def test_proxyapps_scale_best(self, paper_dataset):
        results = analyse_all_suites(paper_dataset)
        proxy = results["proxyapps"].fraction_scaling_to_full
        worst = min(
            r.fraction_scaling_to_full for r in results.values()
        )
        assert proxy > worst

    def test_substantial_fraction_stalls_by_half_device(
        self, paper_dataset
    ):
        results = analyse_all_suites(paper_dataset)
        overall = sum(
            r.fraction_stalled_by_half * r.kernel_count
            for r in results.values()
        ) / 267
        assert overall > 0.2
