"""Bottleneck-crossover mapping over the clock plane."""

import numpy as np
import pytest

from repro.analysis import balance_point, crossover_map
from repro.errors import AnalysisError
from repro.sweep import ConfigurationSpace, SweepRunner
from repro.kernels import balanced_kernel


class TestDominanceMaps:
    def test_compute_kernel_engine_dominated(self, archetype_dataset):
        cmap = crossover_map(
            archetype_dataset, "probe/compute_probe.main"
        )
        assert cmap.compute_bound_fraction > 0.8

    def test_streaming_kernel_memory_dominated(self, archetype_dataset):
        cmap = crossover_map(
            archetype_dataset, "probe/streaming_probe.main"
        )
        assert cmap.bandwidth_bound_fraction > 0.5

    def test_balanced_kernel_has_crossover(self, archetype_dataset):
        cmap = crossover_map(
            archetype_dataset, "probe/balanced_probe.main"
        )
        assert cmap.has_crossover
        frontier = cmap.frontier()
        assert frontier is not None and len(frontier) > 0

    def test_dominance_values_in_range(self, archetype_dataset):
        cmap = crossover_map(
            archetype_dataset, "probe/balanced_probe.main"
        )
        assert set(np.unique(cmap.dominance)).issubset({-1, 0, 1})

    def test_frontier_none_without_crossover(self, archetype_dataset):
        cmap = crossover_map(archetype_dataset, "probe/tiny_probe.main")
        if not cmap.has_crossover:
            assert cmap.frontier() is None


class TestBalancePoint:
    def test_balanced_kernel_balance_point_interior(
        self, archetype_dataset
    ):
        point = balance_point(
            archetype_dataset, "probe/balanced_probe.main"
        )
        assert point is not None
        eng, mem = point
        space = archetype_dataset.space
        assert space.engine_mhz[0] <= eng <= space.engine_mhz[-1]
        assert space.memory_mhz[0] <= mem <= space.memory_mhz[-1]

    def test_degenerate_axis_rejected(self):
        space = ConfigurationSpace(
            cu_counts=(4, 44),
            engine_mhz=(1000.0,),
            memory_mhz=(150.0, 1250.0),
        )
        dataset = SweepRunner().run(
            [balanced_kernel("b", suite="t")], space
        )
        with pytest.raises(AnalysisError):
            crossover_map(dataset, "t/b.main")
