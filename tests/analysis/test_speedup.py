"""Speedup CDFs and headline summaries."""

import pytest

from repro.analysis import (
    cdf_by_category,
    configuration_ceiling,
    overall_cdf,
    speedup_summary,
)
from repro.errors import AnalysisError
from repro.taxonomy import TaxonomyCategory, classify


class TestCdf:
    def test_cdf_monotone(self, archetype_dataset):
        cdf = overall_cdf(archetype_dataset)
        xs = cdf.sorted_speedups
        ys = cdf.cdf_y
        assert all(b >= a for a, b in zip(xs, xs[1:]))
        assert ys[-1] == pytest.approx(1.0)

    def test_quantiles_ordered(self, archetype_dataset):
        cdf = overall_cdf(archetype_dataset)
        assert cdf.quantile(0.1) <= cdf.median <= cdf.quantile(0.9)

    def test_quantile_bounds_validated(self, archetype_dataset):
        with pytest.raises(AnalysisError):
            overall_cdf(archetype_dataset).quantile(1.5)

    def test_fraction_below(self, archetype_dataset):
        cdf = overall_cdf(archetype_dataset)
        assert cdf.fraction_below(1e9) == 1.0
        assert cdf.fraction_below(0.0) == 0.0


class TestByCategory:
    def test_only_populated_categories_returned(self, archetype_dataset):
        taxonomy = classify(archetype_dataset)
        cdfs = cdf_by_category(archetype_dataset, taxonomy)
        counts = taxonomy.category_counts()
        for category, cdf in cdfs.items():
            assert counts[category] == len(cdf.speedups)

    def test_compute_bound_outgains_plateau(
        self, paper_dataset, paper_taxonomy
    ):
        cdfs = cdf_by_category(paper_dataset, paper_taxonomy)
        compute = cdfs[TaxonomyCategory.COMPUTE_BOUND].median
        plateau = cdfs[TaxonomyCategory.PLATEAU].median
        assert compute > 3 * plateau


class TestSummary:
    def test_ceiling_is_55x_on_paper_grid(self, paper_dataset):
        assert configuration_ceiling(paper_dataset) == pytest.approx(55.0)

    def test_no_kernel_beats_ceiling_meaningfully(self, paper_dataset):
        cdf = overall_cdf(paper_dataset)
        assert cdf.quantile(1.0) < 60.0

    def test_summary_keys(self, paper_dataset, paper_taxonomy):
        summary = speedup_summary(paper_dataset, paper_taxonomy)
        assert "ceiling" in summary
        assert "overall_median" in summary
        assert "median_compute_bound" in summary
        assert 1.0 < summary["overall_median"] < 55.0
