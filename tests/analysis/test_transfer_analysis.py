"""Transfer scoring: confusion matrices and per-family taxonomies."""

import numpy as np
import pytest

from repro.analysis.transfer import (
    confusion_from_labels,
    evaluate_transfer,
    family_taxonomy,
    taxonomy_distributions,
)
from repro.errors import AnalysisError
from repro.suites import all_kernels
from repro.taxonomy.categories import TaxonomyCategory

CB = TaxonomyCategory.COMPUTE_BOUND
BB = TaxonomyCategory.BANDWIDTH_BOUND


def subset(n=24):
    """A deterministic slice of the catalog for fast evaluations."""
    return all_kernels()[:n]


class TestConfusionMatrix:
    def test_diagonal_accuracy(self):
        matrix = confusion_from_labels([(CB, CB), (BB, BB), (BB, CB)])
        assert matrix.total == 3
        assert matrix.accuracy == pytest.approx(2 / 3)
        assert matrix.recall(BB) == pytest.approx(0.5)
        assert matrix.recall(CB) == 1.0

    def test_empty_matrix(self):
        matrix = confusion_from_labels([])
        assert matrix.total == 0
        assert matrix.accuracy == 0.0
        assert matrix.recall(CB) == 0.0

    def test_counts_cover_all_categories(self):
        matrix = confusion_from_labels([(CB, BB)])
        n = len(tuple(TaxonomyCategory))
        assert matrix.counts.shape == (n, n)
        assert matrix.counts.sum() == 1

    def test_render_and_to_dict(self):
        matrix = confusion_from_labels([(CB, CB), (BB, CB)])
        text = matrix.render()
        assert "compute_bound" in text
        assert "accuracy 0.500 over 2 kernels" in text
        payload = matrix.to_dict()
        assert payload["accuracy"] == 0.5
        assert np.asarray(payload["counts"]).sum() == 2


class TestFamilyTaxonomy:
    def test_hawaii_taxonomy_matches_paper_grid(self):
        result = family_taxonomy("hawaii", subset())
        assert len(result.labels) == len(subset())

    def test_families_disagree_somewhere(self):
        """The taxonomy is family-sensitive: some labels move."""
        kernels = subset(48)
        hawaii = family_taxonomy("hawaii", kernels)
        kaveri = family_taxonomy("kaveri", kernels)
        moved = sum(
            h.category is not k.category
            for h, k in zip(hawaii.labels, kaveri.labels)
        )
        assert moved > 0

    def test_empty_kernels_rejected(self):
        with pytest.raises(AnalysisError):
            family_taxonomy("hawaii", [])


class TestEvaluateTransfer:
    def test_subset_evaluation_shape(self):
        kernels = subset()
        evaluation = evaluate_transfer("hawaii", "kaveri", kernels)
        assert evaluation.source_family == "hawaii"
        assert evaluation.target_family == "kaveri"
        assert evaluation.matrix.total == len(kernels)
        assert len(evaluation.rows) == len(kernels)
        assert 0.0 <= evaluation.accuracy <= 1.0
        assert evaluation.transfer_error >= 0.0

    def test_leave_one_out_never_self_matches(self):
        kernels = subset()
        evaluation = evaluate_transfer("hawaii", "kaveri", kernels)
        for row in evaluation.rows:
            assert row.nearest != row.kernel_name

    def test_accuracy_floor_on_subset(self):
        """Class agreement well above chance on a catalog slice."""
        evaluation = evaluate_transfer("hawaii", "maxwell", subset(40))
        assert evaluation.accuracy >= 0.7

    def test_to_dict_round_trips_json(self):
        import json

        evaluation = evaluate_transfer("hawaii", "kaveri", subset(8))
        payload = json.loads(json.dumps(evaluation.to_dict()))
        assert payload["confusion"]["total"] == 8
        assert len(payload["kernels"]) == 8


class TestTaxonomyDistributions:
    def test_all_families_covered(self):
        from repro.gpu.uarch import family_names

        distributions = taxonomy_distributions(kernels=subset())
        assert set(distributions) == set(family_names())
        for counts in distributions.values():
            assert sum(counts.values()) == len(subset())

    def test_explicit_family_list(self):
        distributions = taxonomy_distributions(
            ["hawaii"], kernels=subset(8)
        )
        assert list(distributions) == ["hawaii"]
