"""Roofline utilities."""

import pytest

from repro.analysis import (
    attainable_gflops,
    place_kernel,
    ridge_point,
    ridge_trajectory,
    roofline_series,
)
from repro.gpu import W9100_LIKE
from repro.kernels import compute_kernel, streaming_kernel


class TestRoofShape:
    def test_low_intensity_on_bandwidth_slope(self):
        gflops = attainable_gflops(W9100_LIKE, 1.0)
        assert gflops == pytest.approx(
            W9100_LIKE.peak_dram_bytes_per_sec / 1e9
        )

    def test_high_intensity_hits_compute_roof(self):
        assert attainable_gflops(W9100_LIKE, 1e6) == pytest.approx(
            W9100_LIKE.peak_gflops
        )

    def test_ridge_point_joins_the_roofs(self):
        ridge = ridge_point(W9100_LIKE)
        assert attainable_gflops(W9100_LIKE, ridge) == pytest.approx(
            W9100_LIKE.peak_gflops
        )
        just_below = attainable_gflops(W9100_LIKE, ridge * 0.99)
        assert just_below < W9100_LIKE.peak_gflops

    def test_series_is_nondecreasing(self):
        xs, ys = roofline_series(W9100_LIKE)
        assert all(b >= a for a, b in zip(ys, ys[1:]))
        assert len(xs) == len(ys)


class TestKernelPlacement:
    def test_achieved_below_attainable(self):
        for builder in (compute_kernel, streaming_kernel):
            point = place_kernel(builder("k"), W9100_LIKE)
            assert point.achieved_gflops <= point.attainable_gflops * 1.05
            assert 0.0 < point.efficiency <= 1.05

    def test_compute_kernel_on_compute_side(self):
        point = place_kernel(compute_kernel("c"), W9100_LIKE)
        assert not point.is_memory_side
        assert point.arithmetic_intensity > ridge_point(W9100_LIKE)

    def test_streaming_kernel_on_memory_side(self):
        point = place_kernel(streaming_kernel("s"), W9100_LIKE)
        assert point.is_memory_side

    def test_streaming_kernel_near_its_roof(self):
        """A well-coalesced streamer achieves most of the bandwidth
        slope — the roofline sanity check for the DRAM model."""
        point = place_kernel(streaming_kernel("s"), W9100_LIKE)
        assert point.efficiency > 0.5


class TestRidgeTrajectory:
    def test_grid_shape(self):
        grid = ridge_trajectory(44, (200.0, 1000.0), (150.0, 700.0,
                                                      1250.0))
        assert grid.shape == (2, 3)

    def test_ridge_moves_with_clock_ratio(self):
        grid = ridge_trajectory(44, (200.0, 1000.0), (150.0, 1250.0))
        # High engine / low memory pushes the ridge far right;
        # low engine / high memory pulls it far left.
        assert grid[1, 0] > grid[0, 1]

    def test_trajectory_spread_explains_balanced_class(self):
        grid = ridge_trajectory(44, (200.0, 1000.0), (150.0, 1250.0))
        assert grid.max() / grid.min() == pytest.approx(
            5.0 * (1250.0 / 150.0), rel=0.01
        )
