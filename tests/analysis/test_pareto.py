"""Pareto-frontier extraction."""

import pytest

from repro.analysis.pareto import (
    ParetoPoint,
    knee_point,
    pareto_front,
    performance_power_front,
)
from repro.errors import AnalysisError
from repro.gpu import HardwareConfig


def cfg(cu=4):
    return HardwareConfig(cu, 1000.0, 1250.0)


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = [
            (cfg(4), 10.0, 50.0),
            (cfg(8), 20.0, 100.0),
            (cfg(12), 15.0, 120.0),  # dominated by the 20 @ 100 point
        ]
        front = pareto_front(points)
        assert [p.performance for p in front] == [10.0, 20.0]

    def test_front_sorted_by_cost(self):
        points = [
            (cfg(8), 20.0, 100.0),
            (cfg(4), 10.0, 50.0),
            (cfg(16), 30.0, 200.0),
        ]
        front = pareto_front(points)
        costs = [p.cost for p in front]
        assert costs == sorted(costs)

    def test_equal_cost_keeps_best_performance(self):
        points = [(cfg(4), 10.0, 50.0), (cfg(8), 12.0, 50.0)]
        front = pareto_front(points)
        assert len(front) == 1
        assert front[0].performance == 12.0

    def test_single_point(self):
        front = pareto_front([(cfg(), 5.0, 10.0)])
        assert len(front) == 1

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            pareto_front([])

    def test_value_property(self):
        point = ParetoPoint(cfg(), performance=30.0, cost=10.0)
        assert point.value == pytest.approx(3.0)


class TestKneePoint:
    def test_knee_on_elbow_curve(self):
        # Strong diminishing returns: the knee is the bend.
        front = [
            ParetoPoint(cfg(), 0.0, 0.0),
            ParetoPoint(cfg(), 80.0, 10.0),
            ParetoPoint(cfg(), 95.0, 50.0),
            ParetoPoint(cfg(), 100.0, 100.0),
        ]
        knee = knee_point(front)
        assert knee.performance == 80.0

    def test_small_front(self):
        front = [ParetoPoint(cfg(), 1.0, 1.0)]
        assert knee_point(front) is front[0]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            knee_point([])


class TestKernelFront:
    def test_frontier_from_dataset(self, paper_dataset):
        front = performance_power_front(
            paper_dataset, "shoc/triad.triad"
        )
        assert len(front) >= 3
        perfs = [p.performance for p in front]
        costs = [p.cost for p in front]
        assert perfs == sorted(perfs)
        assert costs == sorted(costs)

    def test_knee_below_max_power(self, paper_dataset):
        front = performance_power_front(
            paper_dataset, "shoc/triad.triad"
        )
        knee = knee_point(front)
        assert knee.cost < front[-1].cost
