"""Bottleneck-migration maps."""


from repro.analysis.bottleneck_map import bottleneck_map, migration_summary
from repro.kernels import (
    balanced_kernel,
    compute_kernel,
    latency_kernel,
    streaming_kernel,
)
from repro.sweep import reduced_space

SPACE = reduced_space(3, 3, 3)


class TestMaps:
    def test_compute_kernel_compute_bound_everywhere(self):
        cmap = bottleneck_map(compute_kernel("c"), SPACE)
        histogram = cmap.histogram()
        assert cmap.dominant == "compute"
        assert histogram["compute"] >= 0.9 * SPACE.size

    def test_balanced_kernel_migrates(self):
        cmap = bottleneck_map(balanced_kernel("b"), SPACE)
        assert cmap.migrates()
        histogram = cmap.histogram()
        assert "compute" in histogram and "dram" in histogram

    def test_latency_kernel_latency_dominant(self):
        cmap = bottleneck_map(latency_kernel("l"), SPACE)
        assert cmap.dominant == "latency"

    def test_histogram_covers_whole_space(self):
        cmap = bottleneck_map(streaming_kernel("s"), SPACE)
        assert sum(cmap.histogram().values()) == SPACE.size

    def test_at_matches_corner(self):
        cmap = bottleneck_map(streaming_kernel("s"), SPACE)
        n_cu, n_eng, n_mem = SPACE.shape
        corner = cmap.at(n_cu - 1, n_eng - 1, n_mem - 1)
        assert corner == "dram"


class TestSummary:
    def test_migration_summary_counts_kernels(self):
        kernels = [compute_kernel("c"), balanced_kernel("b"),
                   streaming_kernel("s")]
        summary = migration_summary(kernels, SPACE)
        assert sum(summary.values()) == 3
        # The balanced kernel guarantees at least one migrating entry.
        assert any(count > 1 for count in summary)
