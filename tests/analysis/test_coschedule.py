"""Class-composition matrix: what co-scheduling does to the taxonomy."""

from __future__ import annotations

import pytest

from repro.analysis import (
    NON_SCALING,
    class_composition_matrix,
)
from repro.taxonomy.categories import TaxonomyCategory


@pytest.fixture(scope="module")
def matrix():
    return class_composition_matrix()


class TestRepresentatives:
    def test_every_populated_class_has_a_representative(self, matrix):
        """The catalog populates six of the seven classes; only MIXED
        has no member."""
        assert set(matrix.representatives) == set(
            TaxonomyCategory
        ) - {TaxonomyCategory.MIXED}

    def test_representatives_classify_to_their_class(self, matrix):
        for category in matrix.representatives:
            assert matrix.solo[category] == category


class TestComposition:
    def test_compute_next_to_bandwidth_stays_compute(self, matrix):
        """A compute-bound kernel loses CUs but not its bottleneck: the
        partner's bandwidth traffic doesn't touch the VALU pipes."""
        assert matrix.composed_class(
            TaxonomyCategory.COMPUTE_BOUND,
            TaxonomyCategory.BANDWIDTH_BOUND,
        ) == TaxonomyCategory.COMPUTE_BOUND
        assert not matrix.destroys_scaling(
            TaxonomyCategory.COMPUTE_BOUND,
            TaxonomyCategory.BANDWIDTH_BOUND,
        )

    def test_compute_victim_keeps_class_next_to_anyone(self, matrix):
        for partner in matrix.representatives:
            assert matrix.composed_class(
                TaxonomyCategory.COMPUTE_BOUND, partner
            ) == TaxonomyCategory.COMPUTE_BOUND

    def test_plateau_stays_plateau_next_to_anyone(self, matrix):
        """A launch-overhead kernel is flat solo and flat contended —
        no partner can un-flatten it, and since it never scaled, no
        pairing counts as destroying its scaling."""
        for partner in matrix.representatives:
            assert matrix.composed_class(
                TaxonomyCategory.PLATEAU, partner
            ) == TaxonomyCategory.PLATEAU
            assert not matrix.destroys_scaling(
                TaxonomyCategory.PLATEAU, partner
            )

    def test_bandwidth_next_to_compute_destroys_scaling(self, matrix):
        """The one scaling-destroying pairing: a bandwidth-bound
        victim next to a compute-bound partner lands CU-inverse — the
        partner's CU appetite grows with the grid while the shared
        pipe does not."""
        composed = matrix.composed_class(
            TaxonomyCategory.BANDWIDTH_BOUND,
            TaxonomyCategory.COMPUTE_BOUND,
        )
        assert composed in NON_SCALING
        assert matrix.destroys_scaling(
            TaxonomyCategory.BANDWIDTH_BOUND,
            TaxonomyCategory.COMPUTE_BOUND,
        )

    def test_destructive_pairs_pinned(self, matrix):
        assert matrix.destructive_pairs == [(
            TaxonomyCategory.BANDWIDTH_BOUND,
            TaxonomyCategory.COMPUTE_BOUND,
        )]

    def test_non_scaling_victims_never_flagged(self, matrix):
        """destroys_scaling is about *losing* scaling: a victim already
        in a non-scaling class solo cannot be destroyed further."""
        for victim in NON_SCALING:
            if victim not in matrix.representatives:
                continue
            for partner in matrix.representatives:
                assert not matrix.destroys_scaling(victim, partner)


class TestSerialisation:
    def test_to_dict_round_trips_the_cells(self, matrix):
        payload = matrix.to_dict()
        assert payload["categories"] == [
            c.value for c in matrix.categories
        ]
        i = matrix.categories.index(TaxonomyCategory.BANDWIDTH_BOUND)
        j = matrix.categories.index(TaxonomyCategory.COMPUTE_BOUND)
        assert payload["composed"][i][j] == "cu_inverse"
        assert payload["destroyed"][i][j] is True

    def test_render_marks_destroyed_cells(self, matrix):
        table = matrix.render()
        assert "cu_inverse!" in table
        assert "(partner)" in table
