"""Per-knob sensitivity indices."""

import pytest

from repro.analysis import (
    all_sensitivities,
    dominant_knob_histogram,
    kernel_sensitivity,
)


class TestIndexProperties:
    def test_shares_sum_to_one_or_zero(self, archetype_dataset):
        for index in all_sensitivities(archetype_dataset).values():
            total = index.cu + index.engine + index.memory
            assert total == pytest.approx(1.0) or total == 0.0

    def test_shares_non_negative(self, archetype_dataset):
        for index in all_sensitivities(archetype_dataset).values():
            assert index.cu >= 0 and index.engine >= 0
            assert index.memory >= 0


class TestDominance:
    def test_compute_archetype_dominated_by_cu_or_engine(
        self, archetype_dataset
    ):
        index = kernel_sensitivity(
            archetype_dataset, "probe/compute_probe.main"
        )
        assert index.dominant_knob in ("cu", "engine")
        assert index.memory < 0.1

    def test_streaming_archetype_dominated_by_memory(
        self, archetype_dataset
    ):
        index = kernel_sensitivity(
            archetype_dataset, "probe/streaming_probe.main"
        )
        assert index.dominant_knob == "memory"

    def test_histogram_covers_all_kernels(self, archetype_dataset):
        histogram = dominant_knob_histogram(archetype_dataset)
        assert sum(histogram.values()) == archetype_dataset.num_kernels
        assert set(histogram) == {"cu", "engine", "memory", "none"}
