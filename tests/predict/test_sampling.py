"""Adaptive sweep sampling."""

import pytest

from repro.errors import AnalysisError
from repro.predict.sampling import budget_sweep, evaluate_plan, plan_for_budget


class TestPlans:
    def test_plan_keeps_endpoints(self, paper_dataset):
        plan = plan_for_budget(paper_dataset.space, (3, 3, 3))
        n_cu, n_eng, n_mem = paper_dataset.space.shape
        assert plan.cu_indices[0] == 0
        assert plan.cu_indices[-1] == n_cu - 1
        assert plan.memory_indices[-1] == n_mem - 1

    def test_budget_larger_than_axis_keeps_all(self, paper_dataset):
        plan = plan_for_budget(paper_dataset.space, (99, 99, 99))
        assert plan.size == paper_dataset.space.size

    def test_minimum_two_per_axis(self, paper_dataset):
        with pytest.raises(AnalysisError):
            plan_for_budget(paper_dataset.space, (1, 3, 3))

    def test_subspace_preserves_uarch(self, paper_dataset):
        plan = plan_for_budget(paper_dataset.space, (2, 2, 2))
        subspace = plan.subspace(paper_dataset.space)
        assert subspace.uarch is paper_dataset.space.uarch
        assert subspace.size == 8


class TestReconstruction:
    @pytest.fixture(scope="class")
    def small_sample(self, request):
        dataset = request.getfixturevalue("paper_dataset")
        return dataset.subset(dataset.kernel_names[::30])

    def test_error_falls_with_budget(self, small_sample):
        results = budget_sweep(
            small_sample, budgets=((2, 2, 2), (4, 4, 4))
        )
        coarse = results[0][1].median_abs_rel_error
        fine = results[1][1].median_abs_rel_error
        assert fine <= coarse

    def test_savings_accounting(self, small_sample):
        plan = plan_for_budget(small_sample.space, (3, 3, 3))
        report = evaluate_plan(small_sample, plan)
        assert report.measured_configs == 27
        assert report.total_configs == 891
        assert report.savings_fraction == pytest.approx(1 - 27 / 891)

    def test_errors_are_nonnegative_and_bounded(self, small_sample):
        plan = plan_for_budget(small_sample.space, (3, 3, 3))
        report = evaluate_plan(small_sample, plan)
        assert 0.0 <= report.median_abs_rel_error <= (
            report.p95_abs_rel_error
        )
        assert report.p95_abs_rel_error < 1.0
