"""What-if optimisation counterfactuals."""


from repro.kernels import (
    atomic_kernel,
    compute_kernel,
    latency_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
)
from repro.predict.what_if import (
    STANDARD_SCENARIOS,
    best_advice,
    what_if,
)


class TestScenarios:
    def test_every_scenario_produces_valid_kernel(self):
        kernel = latency_kernel("l")
        for scenario in STANDARD_SCENARIOS:
            optimised = scenario.apply(kernel)
            assert optimised.characteristics is not None
            assert optimised.full_name == kernel.full_name

    def test_transforms_do_not_mutate_original(self):
        kernel = atomic_kernel("a", contention=0.4)
        what_if(kernel)
        assert kernel.characteristics.atomic_contention == 0.4


class TestAdvice:
    def test_results_sorted_best_first(self):
        results = what_if(latency_kernel("l"))
        speedups = [r.speedup for r in results]
        assert speedups == sorted(speedups, reverse=True)

    def test_latency_kernel_wants_chains_broken(self):
        results = what_if(latency_kernel("l"))
        assert results[0].scenario.name in ("break_chains",
                                            "shrink_registers")
        assert results[0].speedup > 1.3

    def test_contended_atomic_kernel_wants_privatisation(self):
        results = what_if(atomic_kernel("a", contention=0.6))
        assert results[0].scenario.name == "privatise_atomics"
        assert results[0].speedup > 1.5

    def test_starved_kernel_wants_bigger_launch(self):
        results = what_if(
            limited_parallelism_kernel("p", num_workgroups=8)
        )
        assert results[0].scenario.name == "grow_launch"

    def test_uncoalesced_streamer_wants_coalescing(self):
        results = what_if(streaming_kernel("s", coalescing=0.2))
        assert results[0].scenario.name == "coalesce"

    def test_tuned_compute_kernel_has_no_advice(self):
        """A clean compute-bound kernel is already at the machine
        limit: nothing in the playbook clears the 10% bar."""
        advice = best_advice(compute_kernel("c"))
        assert advice is None

    def test_best_advice_returns_top_result(self):
        kernel = atomic_kernel("a", contention=0.6)
        advice = best_advice(kernel)
        assert advice is not None
        assert advice.scenario.name == "privatise_atomics"
