"""Cross-family surface transfer: corpus, signatures, predictions."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.gpu.interval_batch import BatchIntervalModel
from repro.kernels.archetypes import build_archetype
from repro.kernels.pack import KernelPack
from repro.predict.transfer import (
    CrossFamilyPredictor,
    clear_transfer_cache,
    default_corpus_kernels,
    surface_signature,
    transfer_predictor,
)
from repro.suites import kernel_by_name


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_transfer_cache()
    yield
    clear_transfer_cache()


def small_predictor(k=3):
    """A predictor over a small archetype corpus (fast)."""
    from repro.gpu.uarch import get_family
    from repro.kernels.archetypes import ARCHETYPE_BUILDERS

    kernels = [
        build_archetype(kind, program=f"tiny-{kind}")
        for kind in sorted(ARCHETYPE_BUILDERS)
    ]
    return CrossFamilyPredictor(
        get_family("hawaii"), get_family("kaveri"), kernels=kernels, k=k
    )


class TestCorpus:
    def test_default_corpus_is_catalog_plus_archetypes(self):
        kernels = default_corpus_kernels()
        names = [k.full_name for k in kernels]
        assert len(names) == len(set(names))
        assert len(kernels) > 267
        assert any("corpus-" in n for n in names)

    def test_k_must_fit_corpus(self):
        with pytest.raises(AnalysisError):
            small_predictor(k=0)
        with pytest.raises(AnalysisError):
            small_predictor(k=1000)


class TestSignature:
    def test_flat_surface_signature_is_zero(self):
        cube = np.ones((3, 3, 3))
        np.testing.assert_array_equal(
            surface_signature(cube), np.zeros(6)
        )

    def test_scale_invariance(self):
        rng = np.random.default_rng(7)
        cube = np.exp(rng.normal(size=(4, 5, 6)))
        np.testing.assert_allclose(
            surface_signature(cube), surface_signature(cube * 137.0)
        )

    def test_nonpositive_rejected(self):
        cube = np.ones((2, 2, 2))
        cube[0, 0, 0] = 0.0
        with pytest.raises(AnalysisError):
            surface_signature(cube)


class TestPrediction:
    def test_corpus_kernel_round_trips_exactly(self):
        """A known kernel hits its own corpus row at distance zero."""
        predictor = small_predictor()
        kernel = build_archetype("streaming", program="tiny-streaming")
        source_perf = BatchIntervalModel().simulate_study(
            KernelPack.from_kernels([kernel]), predictor.source.space
        ).items_per_second[0]
        prediction = predictor.predict_cube(
            source_perf, kernel_name=kernel.full_name
        )
        assert prediction.nearest == kernel.full_name
        assert prediction.neighbour_distances[0] < 1e-9
        target_perf = BatchIntervalModel().simulate_study(
            KernelPack.from_kernels([kernel]), predictor.target.space
        ).items_per_second[0]
        np.testing.assert_allclose(
            prediction.cube, target_perf, rtol=1e-6
        )

    def test_exclude_masks_own_row(self):
        predictor = small_predictor()
        kernel = build_archetype("streaming", program="tiny-streaming")
        source_perf = BatchIntervalModel().simulate_study(
            KernelPack.from_kernels([kernel]), predictor.source.space
        ).items_per_second[0]
        prediction = predictor.predict_cube(
            source_perf,
            kernel_name=kernel.full_name,
            exclude=kernel.full_name,
        )
        assert kernel.full_name not in prediction.neighbours

    def test_shape_mismatch_rejected(self):
        predictor = small_predictor()
        with pytest.raises(AnalysisError):
            predictor.predict_cube(np.ones((2, 2, 2)))

    def test_prediction_spans_target_grid(self):
        predictor = small_predictor()
        kernel = kernel_by_name("rodinia/bfs.kernel1")
        source_perf = BatchIntervalModel().simulate_study(
            KernelPack.from_kernels([kernel]), predictor.source.space
        ).items_per_second[0]
        prediction = predictor.predict_cube(source_perf)
        assert prediction.cube.shape == predictor.target.space.shape
        assert np.all(prediction.cube > 0)
        assert prediction.source_family == "hawaii"
        assert prediction.target_family == "kaveri"

    def test_measured_error_is_cached_and_sane(self):
        predictor = small_predictor()
        error = predictor.measured_error()
        assert 0.0 <= error < 1.0
        assert predictor.measured_error() == error


class TestPredictorCache:
    def test_same_pair_memoised(self):
        first = transfer_predictor("hawaii", "kaveri")
        assert transfer_predictor("hawaii", "kaveri") is first
        assert transfer_predictor("kaveri", "hawaii") is not first

    def test_same_family_rejected(self):
        with pytest.raises(AnalysisError):
            transfer_predictor("hawaii", "hawaii")

    def test_unknown_family_structured_error(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            transfer_predictor("hawaii", "vega")

    def test_physics_change_refits(self):
        import dataclasses

        from repro.gpu.uarch import (
            UarchFamily,
            family_registration,
            get_family,
        )

        first = transfer_predictor("hawaii", "kaveri")
        kaveri = get_family("kaveri")
        tweaked_uarch = dataclasses.replace(
            kaveri.uarch, dram_fixed_latency_ns=200.0
        )
        tweaked = UarchFamily(
            name="kaveri",
            uarch=tweaked_uarch,
            flagship=dataclasses.replace(
                kaveri.flagship, uarch=tweaked_uarch
            ),
            space=dataclasses.replace(
                kaveri.space, uarch=tweaked_uarch
            ),
        )
        with family_registration(tweaked, replace=True):
            refit = transfer_predictor("hawaii", "kaveri")
            assert refit is not first
