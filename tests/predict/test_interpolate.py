"""Log-space trilinear interpolation."""

import pytest

from repro.errors import AnalysisError
from repro.gpu import HardwareConfig
from repro.predict import CubeInterpolator, interpolator


class TestExactness:
    def test_exact_at_grid_points(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        model = CubeInterpolator(archetype_dataset, name)
        space = archetype_dataset.space
        cube = archetype_dataset.kernel_cube(name)
        for c, e, m in [(0, 0, 0), (3, 4, 2), (-1, -1, -1)]:
            config = space.config(
                c % len(space.cu_counts),
                e % len(space.engine_mhz),
                m % len(space.memory_mhz),
            )
            assert model.predict(config) == pytest.approx(
                float(cube[c, e, m])
            )

    def test_power_law_reproduced_between_points(self, archetype_dataset):
        """A compute kernel ~ cu x f_eng: the midpoint prediction must
        sit near the geometric mean of the bracketing grid points."""
        name = "probe/compute_probe.main"
        model = CubeInterpolator(archetype_dataset, name)
        space = archetype_dataset.space
        lo = model.predict(space.config(0, 0, 0))
        hi = model.predict(space.config(1, 0, 0))
        mid_cu = (space.cu_counts[0] * space.cu_counts[1]) ** 0.5
        mid = model.predict(
            HardwareConfig(round(mid_cu), space.engine_mhz[0],
                           space.memory_mhz[0])
        )
        assert lo < mid < hi


class TestClamping:
    def test_clamps_below_range(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        model = CubeInterpolator(archetype_dataset, name)
        space = archetype_dataset.space
        tiny = HardwareConfig(1, 50.0, 50.0)
        assert model.predict(tiny) == pytest.approx(
            model.predict(space.min_config)
        )

    def test_clamps_above_range(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        model = CubeInterpolator(archetype_dataset, name)
        space = archetype_dataset.space
        huge = HardwareConfig(128, 3000.0, 3000.0)
        assert model.predict(huge) == pytest.approx(
            model.predict(space.max_config)
        )


class TestApi:
    def test_speedup_relative(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        model = CubeInterpolator(archetype_dataset, name)
        space = archetype_dataset.space
        assert model.speedup(
            space.max_config, space.min_config
        ) == pytest.approx(
            model.predict(space.max_config)
            / model.predict(space.min_config)
        )

    def test_unknown_kernel_rejected(self, archetype_dataset):
        with pytest.raises(AnalysisError):
            interpolator(archetype_dataset, "nope/x.y")
