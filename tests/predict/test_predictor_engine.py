"""The k-NN surrogate as a registered grid-only timing engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.engine import engine_registration, get_engine
from repro.gpu.simulator import GpuSimulator
from repro.predict.engine import PredictorEngine
from repro.sweep.runner import SweepRunner


@pytest.fixture(scope="module")
def simulator():
    return GpuSimulator("predictor")


class TestRegistration:
    def test_registered_grid_only(self):
        entry = engine_registration("predictor")
        assert entry.capabilities.grid
        assert not entry.capabilities.point
        assert not entry.capabilities.study
        assert entry.descriptor.family == "predictor"

    def test_factory_builds_engine(self):
        engine = get_engine("predictor")
        assert isinstance(engine, PredictorEngine)
        assert engine.corpus_kinds  # default corpus is non-empty

    def test_facade_refuses_point_and_study(
        self, simulator, archetype_kernels, flagship
    ):
        with pytest.raises(ConfigurationError):
            simulator.simulate(archetype_kernels[0], flagship)
        with pytest.raises(ConfigurationError):
            simulator.simulate_study(archetype_kernels, None)


class TestPrediction:
    def test_grid_is_finite_positive_and_shaped(
        self, simulator, archetype_kernels, small_space
    ):
        result = simulator.simulate_grid(
            archetype_kernels[0], small_space
        )
        assert result.items_per_second.shape == small_space.shape
        assert np.isfinite(result.items_per_second).all()
        assert (result.items_per_second > 0).all()
        np.testing.assert_allclose(
            result.time_s * result.items_per_second,
            float(result.global_size),
        )

    def test_corpus_member_predicts_itself(self, small_space):
        # An archetype kernel is (a renamed copy of) a corpus kernel,
        # so its probes match a corpus signature almost exactly and the
        # transplanted surface collapses onto the exact one.
        from repro.kernels.archetypes import build_archetype

        kernel = build_archetype("streaming", program="probe")
        predicted = GpuSimulator("predictor").simulate_grid(
            kernel, small_space
        )
        exact = GpuSimulator("interval").simulate_grid(
            kernel, small_space
        )
        np.testing.assert_allclose(
            predicted.items_per_second,
            exact.items_per_second,
            rtol=1e-6,
        )

    def test_prediction_anchored_to_exact_base_point(
        self, simulator, archetype_kernels, small_space
    ):
        # The (0,0,0) probe is simulated exactly, and predict_cube
        # denormalises against it, so the base corner is near-exact
        # for every kernel, corpus member or not.
        for kernel in archetype_kernels[:3]:
            predicted = simulator.simulate_grid(kernel, small_space)
            exact = GpuSimulator("interval").simulate(
                kernel, small_space.config(0, 0, 0)
            )
            base = predicted.items_per_second[0, 0, 0]
            assert base == pytest.approx(
                exact.items_per_second, rel=1e-6
            )

    def test_corpus_is_cached_per_space(
        self, archetype_kernels, small_space
    ):
        engine = PredictorEngine()
        engine.simulate_grid(archetype_kernels[0], small_space)
        predictor = engine._predictors[small_space]
        engine.simulate_grid(archetype_kernels[1], small_space)
        assert engine._predictors[small_space] is predictor


class TestPredictorCacheBound:
    """The per-space predictor cache is LRU-bounded.

    A long-lived server process answering ad-hoc-space queries must
    not let the corpus cache grow without limit: eviction triggers at
    ``max_cached_spaces``, dropping the least recently used space.
    """

    @staticmethod
    def _spaces(n):
        from repro.sweep import reduced_space

        strides = [(2, 2, 2), (2, 2, 4), (2, 4, 2), (4, 2, 2),
                   (4, 4, 2), (4, 2, 4)]
        return [reduced_space(*strides[i]) for i in range(n)]

    def test_eviction_triggers_at_cap(self, archetype_kernels):
        engine = PredictorEngine(max_cached_spaces=2)
        kernel = archetype_kernels[0]
        first, second, third = self._spaces(3)
        engine.simulate_grid(kernel, first)
        engine.simulate_grid(kernel, second)
        assert engine.cached_space_count == 2
        survivors = dict(engine._predictors)
        engine.simulate_grid(kernel, third)
        assert engine.cached_space_count == 2
        assert first not in engine._predictors  # LRU evicted
        assert engine._predictors[second] is survivors[second]
        assert third in engine._predictors

    def test_hit_refreshes_recency(self, archetype_kernels):
        engine = PredictorEngine(max_cached_spaces=2)
        kernel = archetype_kernels[0]
        first, second, third = self._spaces(3)
        engine.simulate_grid(kernel, first)
        engine.simulate_grid(kernel, second)
        engine.simulate_grid(kernel, first)  # refresh: now second is LRU
        engine.simulate_grid(kernel, third)
        assert first in engine._predictors
        assert second not in engine._predictors
        assert engine.cached_space_count == 2

    def test_evicted_space_is_refit_consistently(
        self, archetype_kernels
    ):
        engine = PredictorEngine(max_cached_spaces=1)
        kernel = archetype_kernels[0]
        first, second = self._spaces(2)
        before = engine.simulate_grid(kernel, first).items_per_second
        engine.simulate_grid(kernel, second)  # evicts first
        assert first not in engine._predictors
        after = engine.simulate_grid(kernel, first).items_per_second
        np.testing.assert_array_equal(before, after)

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            PredictorEngine(max_cached_spaces=0)


class TestSweepIntegration:
    def test_sweep_runner_collects_predictor_dataset(
        self, archetype_kernels, small_space
    ):
        dataset = SweepRunner(engine="predictor").run(
            archetype_kernels, small_space
        )
        assert dataset.perf.shape == (
            len(archetype_kernels),
        ) + small_space.shape
        assert np.isfinite(dataset.perf).all()
        assert not dataset.quarantined

    def test_study_mode_degrades_through_runner(
        self, archetype_kernels, small_space
    ):
        # No study capability anywhere in the predictor family: the
        # runner falls back to per-kernel grids transparently.
        study = SweepRunner(engine="predictor", grid_mode="study").run(
            archetype_kernels, small_space
        )
        batch = SweepRunner(engine="predictor").run(
            archetype_kernels, small_space
        )
        np.testing.assert_array_equal(study.perf, batch.perf)
