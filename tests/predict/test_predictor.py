"""Cross-kernel scaling prediction."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.predict import ScalingPredictor


@pytest.fixture(scope="module")
def corpus(request):
    dataset = request.getfixturevalue("paper_dataset")
    return ScalingPredictor(dataset, k=3)


class TestProbing:
    def test_seven_probe_configs(self, corpus):
        probes = corpus.probe_configs()
        assert len(probes) == 7
        labels = {p.label() for p in probes}
        assert len(labels) == 7  # all distinct

    def test_probe_set_spans_the_corners(self, corpus, paper_dataset):
        space = paper_dataset.space
        labels = {p.label() for p in corpus.probe_configs()}
        assert space.min_config.label() in labels
        assert space.max_config.label() in labels


class TestValidation:
    def test_wrong_probe_count_rejected(self, corpus):
        with pytest.raises(AnalysisError):
            corpus.predict_cube([1.0, 2.0])

    def test_non_positive_probe_rejected(self, corpus):
        with pytest.raises(AnalysisError):
            corpus.predict_cube([1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 7.0])

    def test_invalid_k_rejected(self, paper_dataset):
        with pytest.raises(AnalysisError):
            ScalingPredictor(paper_dataset, k=0)
        with pytest.raises(AnalysisError):
            ScalingPredictor(paper_dataset, k=10_000)


class TestAccuracy:
    def test_self_prediction_recovers_member(self, corpus, paper_dataset):
        """Probing a corpus member must find itself as the nearest
        neighbour and reproduce its surface closely."""
        name = paper_dataset.kernel_names[0]
        cube = paper_dataset.kernel_cube(name)
        probes = [
            float(
                cube[
                    0 if c == 0 else -1,
                    0 if e == 0 else -1,
                    0 if m == 0 else -1,
                ]
            )
            for c, e, m in [
                (0, 0, 0), (-1, 0, 0), (0, -1, 0), (0, 0, -1),
                (-1, -1, 0), (-1, 0, -1), (-1, -1, -1),
            ]
        ]
        result = corpus.predict_cube(probes)
        assert result.nearest == name
        relative = np.abs(result.cube - cube) / cube
        assert float(np.median(relative)) < 0.05

    def test_leave_one_out_median_error_reasonable(self, paper_dataset):
        """Hold out a sample of catalog kernels; the corpus must
        predict each held-out surface within ~35% median error from
        seven probe runs (the HPCA'15-style result)."""
        predictor = ScalingPredictor(paper_dataset, k=3)
        sample = paper_dataset.kernel_names[::40]
        errors = [
            predictor.leave_one_out_error(name) for name in sample
        ]
        assert float(np.median(errors)) < 0.35

    def test_predicted_cube_anchored_to_base_probe(self, corpus,
                                                   paper_dataset):
        name = paper_dataset.kernel_names[5]
        cube = paper_dataset.kernel_cube(name)
        probes = [float(cube[0, 0, 0])] + [
            float(cube[c, e, m])
            for c, e, m in [(-1, 0, 0), (0, -1, 0), (0, 0, -1),
                            (-1, -1, 0), (-1, 0, -1), (-1, -1, -1)]
        ]
        result = corpus.predict_cube(probes)
        assert result.cube[0, 0, 0] == pytest.approx(probes[0])
