"""Per-suite taxonomy signatures on the paper-scale dataset.

These tests pin the qualitative story T4 tells — each suite's
behavioural profile matches its real-world reputation. They guard both
the catalog authoring and the classifier against changes that would
silently retell a different story.
"""


from repro.taxonomy import TaxonomyCategory


def suite_counts(paper_taxonomy, suite):
    return paper_taxonomy.by_suite()[suite]


class TestSuiteSignatures:
    def test_polybench_is_plateau_heavy(self, paper_taxonomy):
        """Tiny default problem sizes: half the suite can't use the
        hardware at all."""
        counts = suite_counts(paper_taxonomy, "polybench")
        assert counts[TaxonomyCategory.PLATEAU] >= 10

    def test_proxyapps_have_no_starved_majority(self, paper_taxonomy):
        counts = suite_counts(paper_taxonomy, "proxyapps")
        starved = (
            counts[TaxonomyCategory.PLATEAU]
            + counts[TaxonomyCategory.PARALLELISM_LIMITED]
        )
        assert starved <= 3

    def test_shoc_contains_pure_capability_classes(self, paper_taxonomy):
        """SHOC's level-0 microbenchmarks are bottleneck-pure: both
        clean classes well represented."""
        counts = suite_counts(paper_taxonomy, "shoc")
        assert counts[TaxonomyCategory.COMPUTE_BOUND] >= 5
        assert counts[TaxonomyCategory.BANDWIDTH_BOUND] >= 10

    def test_pannotia_majority_non_intuitive_or_memory(
        self, paper_taxonomy
    ):
        """Graph analytics: almost nothing scales with pure compute."""
        counts = suite_counts(paper_taxonomy, "pannotia")
        assert counts[TaxonomyCategory.COMPUTE_BOUND] <= 5

    def test_amdapp_majority_intuitive(self, paper_taxonomy):
        counts = suite_counts(paper_taxonomy, "amdapp")
        intuitive = sum(
            n for c, n in counts.items() if c.is_intuitive
        )
        assert intuitive >= 28 * 0.6

    def test_rodinia_is_behaviourally_diverse(self, paper_taxonomy):
        """Rodinia's dwarf coverage: at least five categories present."""
        counts = suite_counts(paper_taxonomy, "rodinia")
        populated = [c for c, n in counts.items() if n > 0]
        assert len(populated) >= 5

    def test_inverse_kernels_concentrated_in_irregular_suites(
        self, paper_taxonomy
    ):
        by_suite = paper_taxonomy.by_suite()
        irregular = sum(
            by_suite[s][TaxonomyCategory.CU_INVERSE]
            for s in ("pannotia", "parboil", "shoc", "opendwarfs")
        )
        total = sum(
            counts[TaxonomyCategory.CU_INVERSE]
            for counts in by_suite.values()
        )
        assert irregular >= total * 0.6
