"""Label explanations."""

import pytest

from repro.taxonomy import TaxonomyCategory, classify
from repro.taxonomy.explain import REMEDIES, explain_all, explain_label


@pytest.fixture(scope="module")
def labels(request):
    dataset = request.getfixturevalue("archetype_dataset")
    return classify(dataset).labels


class TestExplanations:
    def test_every_label_explainable(self, labels):
        for label in labels:
            text = explain_label(label)
            assert label.kernel_name in text
            assert label.category.value in text
            assert "remedy:" in text

    def test_explanation_carries_evidence(self, labels):
        for label in labels:
            text = explain_label(label)
            assert "CU count:" in text
            assert "engine clock:" in text
            assert "memory clock:" in text
            assert "full-range speedup:" in text

    def test_inverse_explanation_mentions_loss(self, labels):
        inverse = [
            l for l in labels
            if l.category is TaxonomyCategory.CU_INVERSE
        ]
        assert inverse, "archetype set must contain an inverse kernel"
        text = explain_label(inverse[0])
        assert "LOSES" in text

    def test_remedies_cover_every_category(self):
        assert set(REMEDIES) == set(TaxonomyCategory)

    def test_explain_all_joins(self, labels):
        text = explain_all(labels[:3])
        assert text.count("remedy:") == 3
