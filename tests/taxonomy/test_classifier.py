"""End-to-end taxonomy classification on modelled kernels."""

import pytest

from repro.taxonomy import (
    AxisBehaviour,
    TaxonomyCategory,
    TaxonomyClassifier,
    classify,
)


@pytest.fixture(scope="module")
def archetype_labels(request):
    dataset = request.getfixturevalue("archetype_dataset")
    result = classify(dataset)
    return {
        label.kernel_name.split("/")[1].split("_probe")[0]: label
        for label in result.labels
    }


class TestArchetypeLabels:
    """Each archetype must land in its designed category."""

    def test_compute_archetype(self, archetype_labels):
        assert archetype_labels["compute"].category is (
            TaxonomyCategory.COMPUTE_BOUND
        )

    def test_streaming_archetype(self, archetype_labels):
        assert archetype_labels["streaming"].category is (
            TaxonomyCategory.BANDWIDTH_BOUND
        )

    def test_balanced_archetype(self, archetype_labels):
        assert archetype_labels["balanced"].category is (
            TaxonomyCategory.BALANCED
        )

    def test_limited_parallelism_archetype(self, archetype_labels):
        assert archetype_labels["limited_parallelism"].category is (
            TaxonomyCategory.PARALLELISM_LIMITED
        )

    def test_thrashing_archetype_is_inverse(self, archetype_labels):
        assert archetype_labels["thrashing"].category is (
            TaxonomyCategory.CU_INVERSE
        )

    def test_tiny_archetype_is_plateau(self, archetype_labels):
        assert archetype_labels["tiny"].category is (
            TaxonomyCategory.PLATEAU
        )

    def test_cache_resident_memory_axis_flat(self, archetype_labels):
        label = archetype_labels["cache_resident"]
        assert label.memory_behaviour in (
            AxisBehaviour.FLAT, AxisBehaviour.SATURATING
        )
        assert label.category is TaxonomyCategory.COMPUTE_BOUND


class TestResultApi:
    def test_every_kernel_labelled_exactly_once(self, archetype_dataset):
        result = classify(archetype_dataset)
        assert len(result.labels) == archetype_dataset.num_kernels
        counts = result.category_counts()
        assert sum(counts.values()) == archetype_dataset.num_kernels

    def test_counts_include_empty_categories(self, archetype_dataset):
        counts = classify(archetype_dataset).category_counts()
        assert set(counts) == set(TaxonomyCategory)

    def test_label_lookup(self, archetype_dataset):
        result = classify(archetype_dataset)
        name = archetype_dataset.kernel_names[0]
        assert result.label_for(name).kernel_name == name

    def test_label_lookup_missing(self, archetype_dataset):
        with pytest.raises(KeyError):
            classify(archetype_dataset).label_for("nope/x.y")

    def test_axis_behaviour_counts_sum(self, archetype_dataset):
        result = classify(archetype_dataset)
        histograms = result.axis_behaviour_counts()
        for axis in ("cu", "engine", "memory"):
            assert sum(histograms[axis].values()) == (
                archetype_dataset.num_kernels
            )

    def test_classifier_is_deterministic(self, archetype_dataset):
        a = TaxonomyClassifier().classify(archetype_dataset)
        b = TaxonomyClassifier().classify(archetype_dataset)
        assert [l.category for l in a.labels] == [
            l.category for l in b.labels
        ]


class TestPaperScale:
    def test_every_category_populated_except_mixed(self, paper_taxonomy):
        counts = paper_taxonomy.category_counts()
        for category in TaxonomyCategory:
            if category is TaxonomyCategory.MIXED:
                continue
            assert counts[category] > 0, category

    def test_intuitive_majority(self, paper_taxonomy):
        """Most kernels scale in intuitive ways (the paper: "many
        kernels scale in intuitive ways"), but a substantial minority
        does not."""
        fraction = paper_taxonomy.intuitive_fraction()
        assert 0.4 < fraction < 0.9

    def test_inverse_population_nontrivial_but_minority(
        self, paper_taxonomy
    ):
        counts = paper_taxonomy.category_counts()
        inverse = counts[TaxonomyCategory.CU_INVERSE]
        assert 5 <= inverse <= 40

    def test_by_suite_covers_all_suites(self, paper_taxonomy):
        assert len(paper_taxonomy.by_suite()) == 8
