"""Classification on degenerate datasets (failure-injection tests).

The pipeline must behave sensibly on pathological-but-legal inputs:
constant performance everywhere, two-point axes, wildly different
magnitudes across kernels, and single-kernel datasets.
"""

import numpy as np
import pytest

from repro.sweep import ConfigurationSpace
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.taxonomy import TaxonomyCategory, classify


def make_dataset(perf, space=None, names=("d/p.k",)):
    space = space or ConfigurationSpace(
        cu_counts=(4, 24, 44),
        engine_mhz=(200.0, 600.0, 1000.0),
        memory_mhz=(150.0, 700.0, 1250.0),
    )
    records = [KernelRecord.from_full_name(n) for n in names]
    return ScalingDataset(space, records, perf)


class TestConstantPerformance:
    def test_constant_kernel_is_plateau(self):
        perf = np.full((1, 3, 3, 3), 42.0)
        result = classify(make_dataset(perf))
        assert result.labels[0].category is TaxonomyCategory.PLATEAU

    def test_constant_kernel_features_clean(self):
        perf = np.full((1, 3, 3, 3), 42.0)
        label = classify(make_dataset(perf)).labels[0]
        assert label.features.end_to_end_gain == pytest.approx(1.0)
        assert label.features.cu.drop_from_peak == 0.0


class TestTwoPointAxes:
    def test_minimal_grid_classifiable(self):
        space = ConfigurationSpace(
            cu_counts=(4, 44),
            engine_mhz=(200.0, 1000.0),
            memory_mhz=(150.0, 1250.0),
        )
        rng = np.random.default_rng(5)
        perf = rng.uniform(1.0, 10.0, (2, 2, 2, 2))
        result = classify(make_dataset(perf, space,
                                       ("d/p.k1", "d/p.k2")))
        assert len(result.labels) == 2


class TestScaleInvariance:
    def test_classification_invariant_to_absolute_magnitude(self):
        """Labels depend on shapes, not units: scaling one kernel's
        performance by 1e9 must not change its label."""
        rng = np.random.default_rng(9)
        base = rng.uniform(1.0, 5.0, (1, 3, 3, 3)).cumsum(axis=1)
        small = classify(make_dataset(base.copy()))
        large = classify(make_dataset(base * 1e9))
        assert small.labels[0].category is large.labels[0].category

    def test_mixed_magnitudes_coexist(self):
        rng = np.random.default_rng(11)
        a = rng.uniform(1.0, 2.0, (1, 3, 3, 3))
        b = a * 1e12
        perf = np.concatenate([a, b])
        result = classify(make_dataset(perf, names=("d/p.k1", "d/p.k2")))
        assert (
            result.labels[0].category is result.labels[1].category
        )
