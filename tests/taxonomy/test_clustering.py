"""Unsupervised clustering cross-check."""

import numpy as np
import pytest

from repro.errors import ClassificationError
from repro.taxonomy import (
    adjusted_rand_index,
    classify,
    cluster_dataset,
    evaluate_agreement,
    kmeans,
    shape_matrix,
    shape_vector,
)


class TestShapeVectors:
    def test_vector_concatenates_three_axes(self, archetype_dataset):
        n_cu, n_eng, n_mem = archetype_dataset.space.shape
        vector = shape_vector(
            archetype_dataset, archetype_dataset.kernel_names[0]
        )
        assert vector.shape == (n_cu + n_eng + n_mem,)

    def test_matrix_rows_match_kernels(self, archetype_dataset):
        matrix = shape_matrix(archetype_dataset)
        assert matrix.shape[0] == archetype_dataset.num_kernels

    def test_log_space_starts_at_zero(self, archetype_dataset):
        # Every slice is normalised to its first point: log2(1) = 0.
        vector = shape_vector(
            archetype_dataset, archetype_dataset.kernel_names[0]
        )
        assert vector[0] == pytest.approx(0.0)


class TestKmeans:
    def test_separable_clusters_recovered(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 0.1, (20, 3))
        b = rng.normal(5.0, 0.1, (20, 3))
        points = np.vstack([a, b])
        assignments, centres = kmeans(points, 2, seed=1)
        assert len(set(assignments[:20])) == 1
        assert len(set(assignments[20:])) == 1
        assert assignments[0] != assignments[20]

    def test_deterministic_for_fixed_seed(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(30, 4))
        a, _ = kmeans(points, 3, seed=9)
        b, _ = kmeans(points, 3, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_invalid_k_rejected(self):
        points = np.zeros((5, 2))
        with pytest.raises(ClassificationError):
            kmeans(points, 0)
        with pytest.raises(ClassificationError):
            kmeans(points, 6)


class TestAdjustedRandIndex:
    def test_identical_labelings(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(11)
        a = rng.integers(0, 4, 2000)
        b = rng.integers(0, 4, 2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_length_mismatch_rejected(self):
        with pytest.raises(ClassificationError):
            adjusted_rand_index(np.zeros(3), np.zeros(4))


class TestAgreement:
    def test_archetypes_cluster_consistently(self, archetype_dataset):
        taxonomy = classify(archetype_dataset)
        agreement = evaluate_agreement(archetype_dataset, taxonomy, k=5)
        assert agreement.purity > 0.5

    def test_paper_scale_agreement(self, paper_dataset, paper_taxonomy):
        agreement = evaluate_agreement(paper_dataset, paper_taxonomy)
        assert agreement.purity >= 0.6
        assert agreement.adjusted_rand_index > 0.2
        assert agreement.agrees

    def test_cluster_assignments_cover_all_kernels(self, archetype_dataset):
        assignments = cluster_dataset(archetype_dataset, k=4)
        assert assignments.shape == (archetype_dataset.num_kernels,)
