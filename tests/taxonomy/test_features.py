"""Feature extraction from scaling curves."""

import math

import pytest

from repro.errors import ClassificationError
from repro.sweep.views import Axis, AxisSlice
from repro.taxonomy import axis_features_from_slice, extract_features


def make_slice(perf, knobs=None, axis=Axis.CU):
    knobs = knobs or tuple(float(4 * (i + 1)) for i in range(len(perf)))
    return AxisSlice(
        kernel_name="t/x.y", axis=axis,
        knob_values=tuple(knobs), perf=tuple(perf),
    )


class TestAxisFeatures:
    def test_perfectly_linear_curve(self):
        knobs = (4.0, 8.0, 16.0, 44.0)
        perf = knobs  # speedup == knob ratio
        features = axis_features_from_slice(make_slice(perf, knobs))
        assert features.elasticity == pytest.approx(1.0)
        assert features.end_elasticity == pytest.approx(1.0)
        assert features.drop_from_peak == 0.0
        assert features.gain == pytest.approx(11.0)

    def test_flat_curve(self):
        features = axis_features_from_slice(
            make_slice((10.0, 10.0, 10.0, 10.0))
        )
        assert features.gain == pytest.approx(1.0)
        assert features.elasticity == pytest.approx(0.0)
        assert features.knee_position == 0.0

    def test_saturating_curve_has_early_knee(self):
        features = axis_features_from_slice(
            make_slice((1.0, 2.0, 2.05, 2.05, 2.05))
        )
        assert features.knee_position <= 0.5
        assert features.end_elasticity == pytest.approx(0.0, abs=0.01)

    def test_inverse_curve_drop_from_peak(self):
        # The 3-point median filter turns (1, 2, 1.5, 1) into
        # (1, 1.5, 1.5, 1): sustained peak 1.5, end 1.0.
        features = axis_features_from_slice(
            make_slice((1.0, 2.0, 1.5, 1.0))
        )
        assert features.drop_from_peak == pytest.approx(1.0 / 3.0)
        assert features.max_adjacent_drop > 0.2

    def test_single_point_spike_ignored(self):
        """Median filtering: an isolated spike is measurement noise,
        not an inverse-scaling signal."""
        features = axis_features_from_slice(
            make_slice((1.0, 1.5, 3.0, 1.6, 1.7))
        )
        assert features.drop_from_peak == 0.0

    def test_single_point_dip_ignored(self):
        features = axis_features_from_slice(
            make_slice((1.0, 1.5, 1.1, 1.6, 1.7))
        )
        assert features.max_adjacent_drop == 0.0

    def test_monotone_curve_has_zero_adjacent_drop(self):
        features = axis_features_from_slice(
            make_slice((1.0, 1.5, 2.0, 2.5))
        )
        assert features.max_adjacent_drop == 0.0

    def test_single_point_slice_rejected(self):
        with pytest.raises(ClassificationError):
            axis_features_from_slice(make_slice((1.0,), (4.0,)))

    def test_elasticity_uses_knob_ratio(self):
        # Doubling over an 11x knob is weak scaling.
        features = axis_features_from_slice(
            make_slice((1.0, 1.3, 1.7, 2.0), (4.0, 12.0, 28.0, 44.0))
        )
        expected = math.log(2.0) / math.log(11.0)
        assert features.elasticity == pytest.approx(expected)


class TestExtractFeatures:
    def test_features_cover_three_axes(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        features = extract_features(archetype_dataset, name)
        assert features.cu.axis is Axis.CU
        assert features.engine.axis is Axis.ENGINE
        assert features.memory.axis is Axis.MEMORY

    def test_end_to_end_gain_matches_cube(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        features = extract_features(archetype_dataset, name)
        cube = archetype_dataset.kernel_cube(name)
        assert features.end_to_end_gain == pytest.approx(
            float(cube[-1, -1, -1] / cube[0, 0, 0])
        )

    def test_as_dict_flattens_all_axes(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        flat = extract_features(archetype_dataset, name).as_dict()
        for prefix in ("cu", "engine", "memory"):
            assert f"{prefix}_gain" in flat
            assert f"{prefix}_elasticity" in flat
