"""Feature extraction from scaling curves."""

import math

import pytest

from repro.errors import ClassificationError
from repro.sweep.views import Axis, AxisSlice
from repro.taxonomy import axis_features_from_slice, extract_features


def make_slice(perf, knobs=None, axis=Axis.CU):
    knobs = knobs or tuple(float(4 * (i + 1)) for i in range(len(perf)))
    return AxisSlice(
        kernel_name="t/x.y", axis=axis,
        knob_values=tuple(knobs), perf=tuple(perf),
    )


class TestAxisFeatures:
    def test_perfectly_linear_curve(self):
        knobs = (4.0, 8.0, 16.0, 44.0)
        perf = knobs  # speedup == knob ratio
        features = axis_features_from_slice(make_slice(perf, knobs))
        assert features.elasticity == pytest.approx(1.0)
        assert features.end_elasticity == pytest.approx(1.0)
        assert features.drop_from_peak == 0.0
        assert features.gain == pytest.approx(11.0)

    def test_flat_curve(self):
        features = axis_features_from_slice(
            make_slice((10.0, 10.0, 10.0, 10.0))
        )
        assert features.gain == pytest.approx(1.0)
        assert features.elasticity == pytest.approx(0.0)
        assert features.knee_position == 0.0

    def test_saturating_curve_has_early_knee(self):
        features = axis_features_from_slice(
            make_slice((1.0, 2.0, 2.05, 2.05, 2.05))
        )
        assert features.knee_position <= 0.5
        assert features.end_elasticity == pytest.approx(0.0, abs=0.01)

    def test_inverse_curve_drop_from_peak(self):
        # The 3-point median filter turns (1, 2, 1.5, 1) into
        # (1, 1.5, 1.5, 1): sustained peak 1.5, end 1.0.
        features = axis_features_from_slice(
            make_slice((1.0, 2.0, 1.5, 1.0))
        )
        assert features.drop_from_peak == pytest.approx(1.0 / 3.0)
        assert features.max_adjacent_drop > 0.2

    def test_single_point_spike_ignored(self):
        """Median filtering: an isolated spike is measurement noise,
        not an inverse-scaling signal."""
        features = axis_features_from_slice(
            make_slice((1.0, 1.5, 3.0, 1.6, 1.7))
        )
        assert features.drop_from_peak == 0.0

    def test_single_point_dip_ignored(self):
        features = axis_features_from_slice(
            make_slice((1.0, 1.5, 1.1, 1.6, 1.7))
        )
        assert features.max_adjacent_drop == 0.0

    def test_monotone_curve_has_zero_adjacent_drop(self):
        features = axis_features_from_slice(
            make_slice((1.0, 1.5, 2.0, 2.5))
        )
        assert features.max_adjacent_drop == 0.0

    def test_single_point_slice_rejected(self):
        with pytest.raises(ClassificationError):
            axis_features_from_slice(make_slice((1.0,), (4.0,)))

    def test_elasticity_uses_knob_ratio(self):
        # Doubling over an 11x knob is weak scaling.
        features = axis_features_from_slice(
            make_slice((1.0, 1.3, 1.7, 2.0), (4.0, 12.0, 28.0, 44.0))
        )
        expected = math.log(2.0) / math.log(11.0)
        assert features.elasticity == pytest.approx(expected)


class TestExtractFeatures:
    def test_features_cover_three_axes(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        features = extract_features(archetype_dataset, name)
        assert features.cu.axis is Axis.CU
        assert features.engine.axis is Axis.ENGINE
        assert features.memory.axis is Axis.MEMORY

    def test_end_to_end_gain_matches_cube(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        features = extract_features(archetype_dataset, name)
        cube = archetype_dataset.kernel_cube(name)
        assert features.end_to_end_gain == pytest.approx(
            float(cube[-1, -1, -1] / cube[0, 0, 0])
        )

    def test_as_dict_flattens_all_axes(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        flat = extract_features(archetype_dataset, name).as_dict()
        for prefix in ("cu", "engine", "memory"):
            assert f"{prefix}_gain" in flat
            assert f"{prefix}_elasticity" in flat


class TestVectorizedHelpers:
    """The NumPy forms of ``_median3``/``_tail_slope`` against their
    original pure-Python definitions: the median filter must be exact;
    the OLS slope agrees to 1 ulp (NumPy's SIMD ``log`` can differ
    from libm's by one bit on rare inputs — verified label-preserving
    over the full catalog in the study engine tests)."""

    @staticmethod
    def _median3_ref(curve):
        if len(curve) < 3:
            return curve
        out = [curve[0]]
        for i in range(1, len(curve) - 1):
            out.append(sorted((curve[i - 1], curve[i], curve[i + 1]))[1])
        out.append(curve[-1])
        return tuple(out)

    @staticmethod
    def _tail_slope_ref(knobs, speedup):
        count = max(2, math.ceil(len(speedup) / 2))
        xs = [math.log(k) for k in knobs[-count:]]
        ys = [math.log(max(s, 1e-12)) for s in speedup[-count:]]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        var_x = sum((x - mean_x) ** 2 for x in xs)
        cov = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        )
        return cov / var_x

    def test_median3_matches_reference_exactly(self):
        import itertools

        from repro.taxonomy.features import _median3

        values = (0.7, 1.0, 1.3, 1.31, 2.5, 0.2)
        for n in (1, 2, 3, 5):
            for curve in itertools.permutations(values, n):
                assert _median3(curve) == self._median3_ref(curve)

    def test_median3_short_curves_are_identity(self):
        from repro.taxonomy.features import _median3

        assert _median3((1.0,)) == (1.0,)
        assert _median3((1.0, 2.0)) == (1.0, 2.0)

    def test_tail_slope_matches_reference_within_ulp(self):
        import numpy as np

        from repro.taxonomy.features import _tail_slope

        rng = np.random.default_rng(7)
        for n in (2, 3, 5, 6, 11):
            for _ in range(200):
                knobs = tuple(
                    sorted(rng.uniform(100.0, 1500.0, size=n))
                )
                speedup = tuple(rng.uniform(0.0, 8.0, size=n))
                got = _tail_slope(knobs, speedup)
                want = self._tail_slope_ref(knobs, speedup)
                assert got == pytest.approx(want, rel=1e-13, abs=1e-13)

    def test_full_catalog_features_unchanged(self):
        """The vectorization must not move any feature the taxonomy
        thresholds read, across every catalog kernel's curves."""
        import numpy as np

        from repro.gpu import GpuSimulator
        from repro.suites import all_kernels
        from repro.sweep import PAPER_SPACE
        from repro.sweep.dataset import KernelRecord, ScalingDataset
        from repro.sweep.views import axis_slice
        from repro.taxonomy.features import _median3, _tail_slope

        kernels = all_kernels()
        study = GpuSimulator().simulate_study(kernels, PAPER_SPACE)
        records = [
            KernelRecord.from_full_name(k.full_name) for k in kernels
        ]
        dataset = ScalingDataset(
            PAPER_SPACE, records, study.items_per_second
        )
        worst = 0.0
        for kernel in kernels:
            for axis in Axis:
                sl = axis_slice(dataset, kernel.full_name, axis)
                smoothed = _median3(sl.speedup)
                assert smoothed == self._median3_ref(sl.speedup)
                got = _tail_slope(sl.knob_values, smoothed)
                want = self._tail_slope_ref(sl.knob_values, smoothed)
                worst = max(worst, abs(got - want))
        assert worst < 1e-15
