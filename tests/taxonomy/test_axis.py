"""Per-axis behaviour classification rules."""


from repro.sweep.views import Axis, AxisSlice
from repro.taxonomy import AxisBehaviour, classify_axis
from repro.taxonomy.axis import is_responsive, is_strongly_responsive
from repro.taxonomy.features import axis_features_from_slice


def behaviour_of(perf, knobs=None):
    knobs = knobs or tuple(
        200.0 * (i + 1) for i in range(len(perf))
    )
    slice_ = AxisSlice("t/x.y", Axis.ENGINE, tuple(knobs), tuple(perf))
    return classify_axis(axis_features_from_slice(slice_))


class TestShapes:
    def test_proportional_is_linear(self):
        knobs = (200.0, 400.0, 600.0, 800.0, 1000.0)
        assert behaviour_of(knobs, knobs) is AxisBehaviour.LINEAR

    def test_weak_rise_is_sublinear(self):
        # 5x knob, 1.9x gain, still rising: elasticity ~0.4.
        assert behaviour_of(
            (1.0, 1.3, 1.55, 1.75, 1.9),
            (200.0, 400.0, 600.0, 800.0, 1000.0),
        ) is AxisBehaviour.SUBLINEAR

    def test_early_flattening_is_saturating(self):
        assert behaviour_of(
            (1.0, 1.8, 2.0, 2.01, 2.01),
        ) is AxisBehaviour.SATURATING

    def test_no_gain_is_flat(self):
        assert behaviour_of((1.0, 1.02, 1.05, 1.08, 1.1)) is (
            AxisBehaviour.FLAT
        )

    def test_large_drop_is_inverse(self):
        assert behaviour_of((1.0, 2.0, 1.9, 1.7, 1.5)) is (
            AxisBehaviour.INVERSE
        )

    def test_small_ripple_not_inverse(self):
        """Sub-threshold dips (quantisation ripple) stay non-inverse."""
        assert behaviour_of((1.0, 2.0, 2.5, 2.45, 2.4)) is not (
            AxisBehaviour.INVERSE
        )

    def test_inverse_takes_precedence_over_gain(self):
        # Strong early gain followed by a >=10% collapse.
        assert behaviour_of((1.0, 3.0, 4.0, 3.4, 3.0)) is (
            AxisBehaviour.INVERSE
        )


class TestPredicates:
    def test_responsive_set(self):
        assert is_responsive(AxisBehaviour.LINEAR)
        assert is_responsive(AxisBehaviour.SUBLINEAR)
        assert is_responsive(AxisBehaviour.SATURATING)
        assert not is_responsive(AxisBehaviour.FLAT)
        assert not is_responsive(AxisBehaviour.INVERSE)

    def test_strongly_responsive_set(self):
        assert is_strongly_responsive(AxisBehaviour.LINEAR)
        assert is_strongly_responsive(AxisBehaviour.SUBLINEAR)
        assert not is_strongly_responsive(AxisBehaviour.SATURATING)
