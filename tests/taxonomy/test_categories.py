"""Category combination rules (unit-level, synthetic features)."""

import pytest

from repro.sweep.views import Axis
from repro.taxonomy import AxisBehaviour, TaxonomyCategory, categorise
from repro.taxonomy.features import AxisFeatures, ScalingFeatures


def features(cu_knee=1.0, end_to_end=10.0):
    def axis(a, knee=1.0):
        return AxisFeatures(
            axis=a, gain=2.0, peak_gain=2.0, knob_ratio=5.0,
            elasticity=0.5, end_elasticity=0.5, knee_position=knee,
            drop_from_peak=0.0, max_adjacent_drop=0.0,
        )

    return ScalingFeatures(
        kernel_name="t/x.y",
        cu=axis(Axis.CU, cu_knee),
        engine=axis(Axis.ENGINE),
        memory=axis(Axis.MEMORY),
        end_to_end_gain=end_to_end,
    )


L = AxisBehaviour.LINEAR
S = AxisBehaviour.SUBLINEAR
SAT = AxisBehaviour.SATURATING
F = AxisBehaviour.FLAT
INV = AxisBehaviour.INVERSE


class TestPrecedence:
    def test_inverse_cu_wins_over_everything(self):
        assert categorise(features(), INV, L, L) is (
            TaxonomyCategory.CU_INVERSE
        )

    def test_all_flat_is_plateau(self):
        assert categorise(features(), F, F, F) is TaxonomyCategory.PLATEAU

    def test_all_saturating_is_plateau(self):
        assert categorise(features(), SAT, SAT, SAT) is (
            TaxonomyCategory.PLATEAU
        )

    def test_cu_flat_with_engine_scaling_is_parallelism_limited(self):
        assert categorise(features(), F, L, F) is (
            TaxonomyCategory.PARALLELISM_LIMITED
        )

    def test_cu_flat_with_memory_scaling_is_bandwidth_bound(self):
        """A CU-flat kernel that still converts memory clock into
        performance is saturating DRAM from the smallest device — the
        memory wall, not a too-small launch."""
        assert categorise(features(), F, F, L) is (
            TaxonomyCategory.BANDWIDTH_BOUND
        )

    def test_early_cu_saturation_with_memory_is_bandwidth_bound(self):
        """A mid-sweep CU knee with memory responsive is bandwidth
        exhaustion, not a too-small launch."""
        assert categorise(features(cu_knee=0.2), SAT, F, L) is (
            TaxonomyCategory.BANDWIDTH_BOUND
        )

    def test_early_cu_saturation_without_memory_is_parallelism(self):
        assert categorise(features(cu_knee=0.1), SAT, L, F) is (
            TaxonomyCategory.PARALLELISM_LIMITED
        )


class TestIntuitiveFamilies:
    def test_compute_bound_signature(self):
        assert categorise(features(), L, L, F) is (
            TaxonomyCategory.COMPUTE_BOUND
        )

    def test_bandwidth_bound_signature(self):
        assert categorise(features(cu_knee=0.6), SAT, SAT, L) is (
            TaxonomyCategory.BANDWIDTH_BOUND
        )

    def test_balanced_signature(self):
        assert categorise(features(), L, S, S) is (
            TaxonomyCategory.BALANCED
        )

    def test_intuitive_flag(self):
        assert TaxonomyCategory.COMPUTE_BOUND.is_intuitive
        assert TaxonomyCategory.BANDWIDTH_BOUND.is_intuitive
        assert TaxonomyCategory.BALANCED.is_intuitive
        assert not TaxonomyCategory.CU_INVERSE.is_intuitive
        assert not TaxonomyCategory.PLATEAU.is_intuitive
        assert not TaxonomyCategory.PARALLELISM_LIMITED.is_intuitive
        assert not TaxonomyCategory.MIXED.is_intuitive


class TestTotality:
    @pytest.mark.parametrize("cu", list(AxisBehaviour))
    @pytest.mark.parametrize("engine", list(AxisBehaviour))
    @pytest.mark.parametrize("memory", list(AxisBehaviour))
    def test_every_combination_gets_a_category(self, cu, engine, memory):
        category = categorise(features(), cu, engine, memory)
        assert isinstance(category, TaxonomyCategory)
