"""Public-API quality gates.

Documentation is a deliverable: every public module, class and function
in the package must carry a docstring, and the top-level ``__all__``
surfaces must resolve. These tests keep that true as the library grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.gpu",
    "repro.kernels",
    "repro.power",
    "repro.predict",
    "repro.report",
    "repro.suites",
    "repro.sweep",
    "repro.taxonomy",
]


def all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


@pytest.mark.parametrize("module_name", all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", all_modules())
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module_name}: missing docstrings on {undocumented}"
    )


class TestPublicSurface:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("package_name", PACKAGES[1:])
    def test_package_all_resolves(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2
