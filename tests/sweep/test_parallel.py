"""Parallel sweep runner: equivalence with the serial runner."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.gpu.families import APU_SPACE
from repro.suites import all_kernels
from repro.sweep import SweepRunner, reduced_space
from repro.sweep.parallel import ParallelSweepRunner


class TestParallelRunner:
    def test_matches_serial_bit_exact(self):
        kernels = all_kernels("proxyapps")
        space = reduced_space(4, 4, 4)
        serial = SweepRunner().run(kernels, space)
        parallel = ParallelSweepRunner(workers=3).run(kernels, space)
        np.testing.assert_array_equal(serial.perf, parallel.perf)
        assert serial.kernel_names == parallel.kernel_names

    def test_nondefault_uarch_matches_serial(self):
        """Alternative hardware families cross the process boundary:
        the uarch round-trips through the worker payloads instead of
        silently falling back to a serial sweep of the wrong device."""
        kernels = all_kernels("proxyapps")
        assert APU_SPACE.uarch is not reduced_space(4, 4, 4).uarch
        serial = SweepRunner().run(kernels, APU_SPACE)
        parallel = ParallelSweepRunner(workers=3).run(kernels, APU_SPACE)
        np.testing.assert_array_equal(serial.perf, parallel.perf)

    def test_progress_callback_monotone_and_complete(self):
        kernels = all_kernels("proxyapps")
        space = reduced_space(4, 4, 4)
        calls = []
        ParallelSweepRunner(workers=3).run(
            kernels, space, progress=lambda d, t: calls.append((d, t))
        )
        assert calls, "progress callback never fired"
        assert calls[-1] == (len(kernels), len(kernels))
        done = [d for d, _ in calls]
        assert done == sorted(done)
        assert all(t == len(kernels) for _, t in calls)

    def test_progress_callback_on_serial_fallback(self):
        kernels = all_kernels("proxyapps")[:2]
        space = reduced_space(4, 4, 4)
        calls = []
        ParallelSweepRunner(workers=8).run(
            kernels, space, progress=lambda d, t: calls.append((d, t))
        )
        assert calls == [(1, 2), (2, 2)]

    def test_single_worker_falls_back_to_serial(self):
        kernels = all_kernels("proxyapps")[:4]
        space = reduced_space(4, 4, 4)
        dataset = ParallelSweepRunner(workers=1).run(kernels, space)
        assert dataset.num_kernels == 4

    def test_small_kernel_list_avoids_pool_overhead(self):
        kernels = all_kernels("proxyapps")[:2]
        space = reduced_space(4, 4, 4)
        dataset = ParallelSweepRunner(workers=8).run(kernels, space)
        assert dataset.num_kernels == 2

    def test_empty_list_rejected(self):
        with pytest.raises(DatasetError):
            ParallelSweepRunner().run([], reduced_space(4, 4, 4))

    def test_worker_count_defaults_positive(self):
        assert ParallelSweepRunner().workers >= 1
