"""Parallel sweep runner: equivalence with the serial runner."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.gpu.families import APU_SPACE
from repro.suites import all_kernels
from repro.sweep import (
    FaultKind,
    FaultSpec,
    SweepRunner,
    reduced_space,
)
import repro.sweep.parallel as parallel_module
from repro.sweep.parallel import ParallelSweepRunner


class TestParallelRunner:
    def test_matches_serial_bit_exact(self):
        kernels = all_kernels("proxyapps")
        space = reduced_space(4, 4, 4)
        serial = SweepRunner().run(kernels, space)
        parallel = ParallelSweepRunner(workers=3).run(kernels, space)
        np.testing.assert_array_equal(serial.perf, parallel.perf)
        assert serial.kernel_names == parallel.kernel_names

    def test_nondefault_uarch_matches_serial(self):
        """Alternative hardware families cross the process boundary:
        the uarch round-trips through the worker payloads instead of
        silently falling back to a serial sweep of the wrong device."""
        kernels = all_kernels("proxyapps")
        assert APU_SPACE.uarch is not reduced_space(4, 4, 4).uarch
        serial = SweepRunner().run(kernels, APU_SPACE)
        parallel = ParallelSweepRunner(workers=3).run(kernels, APU_SPACE)
        np.testing.assert_array_equal(serial.perf, parallel.perf)

    def test_progress_callback_monotone_and_complete(self):
        kernels = all_kernels("proxyapps")
        space = reduced_space(4, 4, 4)
        calls = []
        ParallelSweepRunner(workers=3).run(
            kernels, space, progress=lambda d, t: calls.append((d, t))
        )
        assert calls, "progress callback never fired"
        assert calls[-1] == (len(kernels), len(kernels))
        done = [d for d, _ in calls]
        assert done == sorted(done)
        assert all(t == len(kernels) for _, t in calls)

    def test_progress_callback_on_serial_fallback(self):
        kernels = all_kernels("proxyapps")[:2]
        space = reduced_space(4, 4, 4)
        calls = []
        ParallelSweepRunner(workers=8).run(
            kernels, space, progress=lambda d, t: calls.append((d, t))
        )
        assert calls == [(1, 2), (2, 2)]

    def test_single_worker_falls_back_to_serial(self):
        kernels = all_kernels("proxyapps")[:4]
        space = reduced_space(4, 4, 4)
        dataset = ParallelSweepRunner(workers=1).run(kernels, space)
        assert dataset.num_kernels == 4

    def test_small_kernel_list_avoids_pool_overhead(self):
        kernels = all_kernels("proxyapps")[:2]
        space = reduced_space(4, 4, 4)
        dataset = ParallelSweepRunner(workers=8).run(kernels, space)
        assert dataset.num_kernels == 2

    def test_empty_list_rejected(self):
        with pytest.raises(DatasetError):
            ParallelSweepRunner().run([], reduced_space(4, 4, 4))

    def test_worker_count_defaults_positive(self):
        assert ParallelSweepRunner().workers >= 1


class TestSharedMemoryTransfer:
    """Zero-copy result rows: same dataset whether the rows travel
    through the shared segment, the pickle fallback, or a degraded
    serial chunk — and quarantine metadata is unaffected."""

    @pytest.fixture(scope="class")
    def kernels(self):
        return all_kernels("proxyapps")

    @pytest.fixture(scope="class")
    def space(self):
        return reduced_space(4, 4, 4)

    @pytest.fixture(scope="class")
    def clean_dataset(self, kernels, space):
        return SweepRunner().run(kernels, space)

    def test_segment_created_and_released(self, kernels, space):
        runner = ParallelSweepRunner(workers=3)
        created = []
        original = ParallelSweepRunner._create_shared_result

        def tracking(result_shape):
            shm = original(result_shape)
            created.append(shm)
            return shm

        ParallelSweepRunner._create_shared_result = staticmethod(tracking)
        try:
            runner.run(kernels, space)
        finally:
            ParallelSweepRunner._create_shared_result = staticmethod(
                original
            )
        assert len(created) == 1 and created[0] is not None
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=created[0].name)

    def test_pickle_fallback_when_segment_unavailable(
        self, kernels, space, clean_dataset, monkeypatch
    ):
        monkeypatch.setattr(
            ParallelSweepRunner,
            "_create_shared_result",
            staticmethod(lambda result_shape: None),
        )
        dataset = ParallelSweepRunner(workers=3).run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)

    def test_pickle_fallback_when_worker_attach_fails(
        self, kernels, space, clean_dataset, monkeypatch
    ):
        # Patched before the (forked) pool is created, so workers
        # inherit the broken writer and must fall back to pickling.
        monkeypatch.setattr(
            parallel_module,
            "_write_rows_shared",
            lambda shm_info, perf: False,
        )
        dataset = ParallelSweepRunner(workers=3).run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)

    def test_quarantine_metadata_crosses_shared_path(
        self, kernels, space, clean_dataset
    ):
        """PR 2 semantics through the shared segment: the quarantined
        kernel still yields a NaN row plus its recorded cause."""
        target = kernels[2].full_name
        runner = ParallelSweepRunner(
            workers=3, retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                              scope="worker", message="shm boom")],
        )
        dataset = runner.run(kernels, space, strict=False)
        assert dataset.quarantined == {target: "shm boom"}
        row = dataset.kernel_names.index(target)
        assert np.isnan(dataset.perf[row]).all()
        healthy = dataset.healthy()
        np.testing.assert_array_equal(
            healthy.perf,
            clean_dataset.subset(healthy.kernel_names).perf,
        )

    def test_degraded_chunk_rows_written_by_parent(
        self, kernels, space, clean_dataset
    ):
        """A chunk that exhausts retries is recomputed serially in the
        parent; its rows must land in the result regardless of the
        shared segment the workers were using."""
        runner = ParallelSweepRunner(
            workers=3, chunk_timeout_s=2.0, max_retries=0,
            retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.EXIT, scope="worker",
                              kernel_name=kernels[2].full_name)],
        )
        dataset = runner.run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)
        assert runner.last_stats.degraded_chunks == 1
