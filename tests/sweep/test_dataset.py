"""ScalingDataset: construction, access, persistence."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.sweep import ScalingDataset, reduced_space
from repro.sweep.dataset import KernelRecord


@pytest.fixture
def space():
    return reduced_space(4, 4, 4)


@pytest.fixture
def records():
    return [
        KernelRecord.from_full_name("s1/p1.k1"),
        KernelRecord.from_full_name("s1/p1.k2"),
        KernelRecord.from_full_name("s2/p2.k1"),
    ]


@pytest.fixture
def dataset(space, records):
    rng = np.random.default_rng(7)
    perf = rng.uniform(1.0, 100.0, (3,) + space.shape)
    return ScalingDataset(space, records, perf)


class TestKernelRecord:
    def test_parses_full_identifier(self):
        record = KernelRecord.from_full_name("rodinia/bfs.kernel1")
        assert record.suite == "rodinia"
        assert record.program == "bfs"
        assert record.kernel == "kernel1"

    def test_parses_without_suite(self):
        record = KernelRecord.from_full_name("bfs.kernel1")
        assert record.suite == ""
        assert record.program == "bfs"

    def test_rejects_malformed(self):
        with pytest.raises(DatasetError):
            KernelRecord.from_full_name("no-dot-here")


class TestConstruction:
    def test_shape_mismatch_rejected(self, space, records):
        with pytest.raises(DatasetError):
            ScalingDataset(space, records, np.ones((2,) + space.shape))

    def test_non_finite_rejected(self, space, records):
        perf = np.ones((3,) + space.shape)
        perf[0, 0, 0, 0] = np.nan
        with pytest.raises(DatasetError):
            ScalingDataset(space, records, perf)

    def test_non_positive_rejected(self, space, records):
        perf = np.ones((3,) + space.shape)
        perf[1, 0, 0, 0] = 0.0
        with pytest.raises(DatasetError):
            ScalingDataset(space, records, perf)

    def test_duplicate_names_rejected(self, space, records):
        duplicated = [records[0], records[0], records[2]]
        with pytest.raises(DatasetError):
            ScalingDataset(space, duplicated, np.ones((3,) + space.shape))


class TestAccess:
    def test_kernel_cube_shape(self, dataset, space):
        cube = dataset.kernel_cube("s1/p1.k2")
        assert cube.shape == space.shape

    def test_row_index_missing(self, dataset):
        with pytest.raises(DatasetError):
            dataset.row_index("nope/x.y")

    def test_suites_in_first_appearance_order(self, dataset):
        assert dataset.suites() == ["s1", "s2"]

    def test_rows_for_suite(self, dataset):
        assert dataset.rows_for_suite("s1") == [0, 1]

    def test_subset_preserves_data(self, dataset):
        sub = dataset.subset(["s2/p2.k1", "s1/p1.k1"])
        assert sub.kernel_names == ["s2/p2.k1", "s1/p1.k1"]
        np.testing.assert_array_equal(
            sub.kernel_cube("s2/p2.k1"), dataset.kernel_cube("s2/p2.k1")
        )


class TestQuarantine:
    @pytest.fixture
    def quarantined_dataset(self, space, records):
        rng = np.random.default_rng(7)
        perf = rng.uniform(1.0, 100.0, (3,) + space.shape)
        perf[1] = np.nan
        return ScalingDataset(
            space, records, perf,
            quarantined={"s1/p1.k2": "engine exploded"},
        )

    def test_quarantined_nan_row_accepted(self, quarantined_dataset):
        assert quarantined_dataset.quarantined == {
            "s1/p1.k2": "engine exploded"
        }

    def test_validate_returns_self(self, quarantined_dataset):
        assert quarantined_dataset.validate() is quarantined_dataset

    def test_healthy_drops_quarantined_rows(self, quarantined_dataset):
        healthy = quarantined_dataset.healthy()
        assert healthy.kernel_names == ["s1/p1.k1", "s2/p2.k1"]
        assert healthy.quarantined == {}

    def test_healthy_is_identity_without_quarantine(self, dataset):
        assert dataset.healthy() is dataset

    def test_error_names_offending_kernel(self, space, records):
        perf = np.ones((3,) + space.shape)
        perf[1, 0, 0, 0] = np.nan
        with pytest.raises(DatasetError, match="s1/p1.k2"):
            ScalingDataset(space, records, perf)

    def test_non_positive_error_names_kernel(self, space, records):
        perf = np.ones((3,) + space.shape)
        perf[2, 0, 0, 0] = -1.0
        with pytest.raises(DatasetError, match="s2/p2.k1"):
            ScalingDataset(space, records, perf)

    def test_quarantined_row_must_be_nan_filled(self, space, records):
        perf = np.ones((3,) + space.shape)
        with pytest.raises(DatasetError, match="NaN-filled"):
            ScalingDataset(space, records, perf,
                           quarantined={"s1/p1.k2": "bad"})

    def test_unknown_quarantined_name_rejected(self, space, records):
        perf = np.ones((3,) + space.shape)
        with pytest.raises(DatasetError, match="absent"):
            ScalingDataset(space, records, perf,
                           quarantined={"nope/x.y": "bad"})

    def test_subset_carries_quarantine(self, quarantined_dataset):
        sub = quarantined_dataset.subset(["s1/p1.k2", "s2/p2.k1"])
        assert sub.quarantined == {"s1/p1.k2": "engine exploded"}

    def test_save_load_round_trips_quarantine(
        self, quarantined_dataset, tmp_path
    ):
        path = quarantined_dataset.save(tmp_path / "q.npz")
        restored = ScalingDataset.load(path)
        assert restored.quarantined == quarantined_dataset.quarantined
        assert np.isnan(restored.kernel_cube("s1/p1.k2")).all()


class TestAtomicPersistence:
    def test_interrupted_save_leaves_previous_file_intact(
        self, dataset, tmp_path, monkeypatch
    ):
        path = dataset.save(tmp_path / "data.npz")
        good_bytes = path.read_bytes()

        def exploding_savez(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        with pytest.raises(OSError):
            dataset.save(path)
        assert path.read_bytes() == good_bytes
        assert ScalingDataset.load(path).kernel_names == \
            dataset.kernel_names
        assert not list(tmp_path.glob("*.tmp*"))

    def test_interrupted_csv_leaves_previous_file_intact(
        self, dataset, tmp_path, monkeypatch
    ):
        path = dataset.export_csv(tmp_path / "data.csv")
        good_text = path.read_text()

        import builtins

        real_open = builtins.open

        def exploding_open(file, mode="r", *args, **kwargs):
            handle = real_open(file, mode, *args, **kwargs)
            if "w" in mode and "tmp" in str(file):
                original_write = handle.write
                state = {"writes": 0}

                def write(text):
                    state["writes"] += 1
                    if state["writes"] > 3:
                        raise OSError("disk full")
                    return original_write(text)

                handle.write = write
            return handle

        monkeypatch.setattr(builtins, "open", exploding_open)
        with pytest.raises(OSError):
            dataset.export_csv(path)
        monkeypatch.undo()
        assert path.read_text() == good_text
        assert not list(tmp_path.glob("*.tmp*"))


class TestPersistence:
    def test_save_load_round_trip(self, dataset, tmp_path):
        path = dataset.save(tmp_path / "data.npz")
        restored = ScalingDataset.load(path)
        assert restored.kernel_names == dataset.kernel_names
        np.testing.assert_allclose(restored.perf, dataset.perf)
        assert restored.space == dataset.space

    def test_save_appends_npz_suffix(self, dataset, tmp_path):
        path = dataset.save(tmp_path / "data")
        assert path.suffix == ".npz"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            ScalingDataset.load(tmp_path / "nothing.npz")

    def test_load_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, wrong_key=np.ones(3))
        with pytest.raises(DatasetError):
            ScalingDataset.load(bad)

    def test_csv_export(self, dataset, tmp_path):
        path = dataset.export_csv(tmp_path / "data.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("suite,program,kernel")
        assert len(lines) == 1 + 3 * dataset.space.size
