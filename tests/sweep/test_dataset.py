"""ScalingDataset: construction, access, persistence."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.sweep import ScalingDataset, reduced_space
from repro.sweep.dataset import KernelRecord


@pytest.fixture
def space():
    return reduced_space(4, 4, 4)


@pytest.fixture
def records():
    return [
        KernelRecord.from_full_name("s1/p1.k1"),
        KernelRecord.from_full_name("s1/p1.k2"),
        KernelRecord.from_full_name("s2/p2.k1"),
    ]


@pytest.fixture
def dataset(space, records):
    rng = np.random.default_rng(7)
    perf = rng.uniform(1.0, 100.0, (3,) + space.shape)
    return ScalingDataset(space, records, perf)


class TestKernelRecord:
    def test_parses_full_identifier(self):
        record = KernelRecord.from_full_name("rodinia/bfs.kernel1")
        assert record.suite == "rodinia"
        assert record.program == "bfs"
        assert record.kernel == "kernel1"

    def test_parses_without_suite(self):
        record = KernelRecord.from_full_name("bfs.kernel1")
        assert record.suite == ""
        assert record.program == "bfs"

    def test_rejects_malformed(self):
        with pytest.raises(DatasetError):
            KernelRecord.from_full_name("no-dot-here")


class TestConstruction:
    def test_shape_mismatch_rejected(self, space, records):
        with pytest.raises(DatasetError):
            ScalingDataset(space, records, np.ones((2,) + space.shape))

    def test_non_finite_rejected(self, space, records):
        perf = np.ones((3,) + space.shape)
        perf[0, 0, 0, 0] = np.nan
        with pytest.raises(DatasetError):
            ScalingDataset(space, records, perf)

    def test_non_positive_rejected(self, space, records):
        perf = np.ones((3,) + space.shape)
        perf[1, 0, 0, 0] = 0.0
        with pytest.raises(DatasetError):
            ScalingDataset(space, records, perf)

    def test_duplicate_names_rejected(self, space, records):
        duplicated = [records[0], records[0], records[2]]
        with pytest.raises(DatasetError):
            ScalingDataset(space, duplicated, np.ones((3,) + space.shape))


class TestAccess:
    def test_kernel_cube_shape(self, dataset, space):
        cube = dataset.kernel_cube("s1/p1.k2")
        assert cube.shape == space.shape

    def test_row_index_missing(self, dataset):
        with pytest.raises(DatasetError):
            dataset.row_index("nope/x.y")

    def test_suites_in_first_appearance_order(self, dataset):
        assert dataset.suites() == ["s1", "s2"]

    def test_rows_for_suite(self, dataset):
        assert dataset.rows_for_suite("s1") == [0, 1]

    def test_subset_preserves_data(self, dataset):
        sub = dataset.subset(["s2/p2.k1", "s1/p1.k1"])
        assert sub.kernel_names == ["s2/p2.k1", "s1/p1.k1"]
        np.testing.assert_array_equal(
            sub.kernel_cube("s2/p2.k1"), dataset.kernel_cube("s2/p2.k1")
        )


class TestPersistence:
    def test_save_load_round_trip(self, dataset, tmp_path):
        path = dataset.save(tmp_path / "data.npz")
        restored = ScalingDataset.load(path)
        assert restored.kernel_names == dataset.kernel_names
        np.testing.assert_allclose(restored.perf, dataset.perf)
        assert restored.space == dataset.space

    def test_save_appends_npz_suffix(self, dataset, tmp_path):
        path = dataset.save(tmp_path / "data")
        assert path.suffix == ".npz"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            ScalingDataset.load(tmp_path / "nothing.npz")

    def test_load_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, wrong_key=np.ones(3))
        with pytest.raises(DatasetError):
            ScalingDataset.load(bad)

    def test_csv_export(self, dataset, tmp_path):
        path = dataset.export_csv(tmp_path / "data.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("suite,program,kernel")
        assert len(lines) == 1 + 3 * dataset.space.size
