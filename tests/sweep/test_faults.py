"""Fault injection engine and per-kernel quarantine in the runner."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.simulator import GpuSimulator
from repro.suites import all_kernels
from repro.sweep import (
    FaultKind,
    FaultSpec,
    FaultyEngine,
    SweepRunner,
    reduced_space,
)


@pytest.fixture(scope="module")
def kernels():
    return all_kernels("proxyapps")[:6]


@pytest.fixture(scope="module")
def space():
    return reduced_space(4, 4, 4)


@pytest.fixture(scope="module")
def clean_dataset(kernels, space):
    return SweepRunner().run(kernels, space)


def faulty_runner(specs):
    return SweepRunner(simulator=FaultyEngine(GpuSimulator(), specs))


class TestFaultSpec:
    def test_dict_round_trip(self):
        spec = FaultSpec(
            kind=FaultKind.HANG, kernel_name="a/b.c", kernel_index=3,
            scope="worker", max_trips=2, state_path="/tmp/x",
            hang_s=1.5, message="m",
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_scope(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.RAISE, scope="everywhere")


class TestRaiseFault:
    def test_strict_raises_structured_error(self, kernels, space):
        target = kernels[2].full_name
        runner = faulty_runner(
            [FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                       message="boom")]
        )
        with pytest.raises(SimulationError) as excinfo:
            runner.run(kernels, space, strict=True)
        assert excinfo.value.kernel_name == target
        assert "boom" in str(excinfo.value)

    def test_non_strict_quarantines_only_target(
        self, kernels, space, clean_dataset
    ):
        target = kernels[2].full_name
        runner = faulty_runner(
            [FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                       message="boom")]
        )
        dataset = runner.run(kernels, space, strict=False)
        assert dataset.quarantined == {target: "boom"}
        assert np.isnan(dataset.kernel_cube(target)).all()
        healthy = dataset.healthy()
        assert target not in healthy.kernel_names
        np.testing.assert_array_equal(
            healthy.perf,
            clean_dataset.subset(healthy.kernel_names).perf,
        )

    def test_kernel_index_targets_nth_call(self, kernels, space):
        runner = faulty_runner(
            [FaultSpec(kind=FaultKind.RAISE, kernel_index=1)]
        )
        dataset = runner.run(kernels, space, strict=False)
        assert list(dataset.quarantined) == [kernels[1].full_name]


class TestNanFault:
    def test_silent_corruption_detected_and_quarantined(
        self, kernels, space
    ):
        target = kernels[0].full_name
        runner = faulty_runner(
            [FaultSpec(kind=FaultKind.NAN, kernel_name=target)]
        )
        dataset = runner.run(kernels, space, strict=False)
        assert "non-finite" in dataset.quarantined[target]

    def test_silent_corruption_fails_fast_in_strict(self, kernels, space):
        runner = faulty_runner(
            [FaultSpec(kind=FaultKind.NAN,
                       kernel_name=kernels[0].full_name)]
        )
        with pytest.raises(SimulationError, match="non-finite"):
            runner.run(kernels, space, strict=True)


class TestTripCounting:
    def test_max_trips_expires_in_process(self, kernels, space):
        spec = FaultSpec(kind=FaultKind.RAISE,
                         kernel_name=kernels[0].full_name, max_trips=1)
        engine = FaultyEngine(GpuSimulator(), [spec])
        runner = SweepRunner(simulator=engine)
        assert runner.run(kernels[:2], space, strict=False).quarantined
        assert not runner.run(kernels[:2], space, strict=False).quarantined

    def test_state_file_counts_trips(self, kernels, space, tmp_path):
        state = tmp_path / "trips"
        spec = FaultSpec(kind=FaultKind.RAISE,
                         kernel_name=kernels[0].full_name,
                         max_trips=1, state_path=str(state))
        # Two *fresh* engines share the tally through the state file.
        assert faulty_runner([spec]).run(
            kernels[:2], space, strict=False
        ).quarantined
        assert not faulty_runner([spec]).run(
            kernels[:2], space, strict=False
        ).quarantined
        assert state.stat().st_size == 1


class TestScopes:
    def test_worker_scoped_fault_inert_in_main_process(
        self, kernels, space, clean_dataset
    ):
        spec = FaultSpec(kind=FaultKind.RAISE, scope="worker")
        dataset = faulty_runner([spec]).run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)

    def test_main_scoped_fault_fires_in_main_process(
        self, kernels, space
    ):
        spec = FaultSpec(kind=FaultKind.RAISE, scope="main",
                         kernel_name=kernels[0].full_name)
        with pytest.raises(SimulationError):
            faulty_runner([spec]).run(kernels, space)


class TestRunnerErrorWrapping:
    def test_arbitrary_engine_exception_becomes_simulation_error(
        self, kernels, space
    ):
        class ExplodingSimulator:
            def simulate_grid(self, kernel, space, mode=None):
                raise ZeroDivisionError("model blew up")

        runner = SweepRunner(simulator=ExplodingSimulator())
        with pytest.raises(SimulationError) as excinfo:
            runner.run(kernels[:1], space, strict=True)
        assert excinfo.value.kernel_name == kernels[0].full_name
        assert "ZeroDivisionError" in excinfo.value.reason

    def test_simulator_dispatch_wraps_engine_failures(
        self, kernels, space, monkeypatch
    ):
        simulator = GpuSimulator()
        monkeypatch.setattr(
            simulator._grid, "simulate_grid",
            lambda *a, **k: (_ for _ in ()).throw(
                FloatingPointError("overflow")
            ),
        )
        with pytest.raises(SimulationError) as excinfo:
            simulator.simulate_grid(kernels[0], space)
        assert excinfo.value.kernel_name == kernels[0].full_name
