"""Content-addressed sweep result cache.

The acceptance property: a cached re-run never invokes the engine.
``engine_call_count`` pins that — a hit must leave the counter at
zero — and the fingerprint must move with every simulated input
(kernel content, space, engine) while staying put across grid modes,
which are equivalence-tested elsewhere.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.gpu import Engine
from repro.gpu.families import APU_SPACE
from repro.gpu.simulator import (
    GridMode,
    engine_call_count,
    reset_engine_call_count,
)
from repro.suites import all_kernels
from repro.sweep import (
    SweepCache,
    SweepRunner,
    cached_paper_dataset,
    reduced_space,
    sweep_fingerprint,
)
from repro.sweep.cache import CACHE_DIR_ENV, default_cache_dir


@pytest.fixture
def kernels():
    return all_kernels("proxyapps")


@pytest.fixture
def space():
    return reduced_space(4, 4, 4)


@pytest.fixture
def dataset(kernels, space):
    return SweepRunner().run(kernels, space)


@pytest.fixture
def cache(tmp_path):
    return SweepCache(tmp_path / "cache")


class TestFingerprint:
    def test_deterministic(self, kernels, space):
        assert sweep_fingerprint(kernels, space) == sweep_fingerprint(
            kernels, space
        )

    def test_sensitive_to_kernel_content(self, kernels, space):
        base = sweep_fingerprint(kernels, space)
        edited = list(kernels)
        edited[0] = dataclasses.replace(
            edited[0],
            characteristics=dataclasses.replace(
                edited[0].characteristics,
                valu_ops_per_item=(
                    edited[0].characteristics.valu_ops_per_item + 1.0
                ),
            ),
        )
        assert sweep_fingerprint(edited, space) != base

    def test_sensitive_to_space_and_uarch(self, kernels, space):
        base = sweep_fingerprint(kernels, space)
        assert sweep_fingerprint(kernels, reduced_space(2, 2, 2)) != base
        assert sweep_fingerprint(kernels, APU_SPACE) != base

    def test_sensitive_to_engine(self, kernels, space):
        assert sweep_fingerprint(
            kernels, space, Engine.INTERVAL
        ) != sweep_fingerprint(kernels, space, Engine.EVENT)

    def test_kernel_order_matters(self, kernels, space):
        reordered = list(reversed(kernels))
        assert sweep_fingerprint(reordered, space) != sweep_fingerprint(
            kernels, space
        )


class TestCacheStoreLoad:
    def test_miss_then_hit_round_trip(self, cache, kernels, space, dataset):
        fp = sweep_fingerprint(kernels, space)
        assert cache.load(fp) is None
        assert cache.misses == 1
        cache.store(fp, dataset)
        loaded = cache.load(fp)
        assert loaded is not None
        assert cache.hits == 1
        np.testing.assert_array_equal(loaded.perf, dataset.perf)
        assert loaded.kernel_names == dataset.kernel_names

    def test_corrupt_entry_is_miss_and_removed(
        self, cache, kernels, space, dataset
    ):
        fp = sweep_fingerprint(kernels, space)
        cache.store(fp, dataset)
        cache.path_for(fp).write_bytes(b"not an npz archive")
        assert cache.load(fp) is None
        assert not cache.path_for(fp).exists()

    def test_invalidate_and_entries(self, cache, kernels, space, dataset):
        fp = sweep_fingerprint(kernels, space)
        assert cache.invalidate(fp) is False
        cache.store(fp, dataset)
        assert cache.entries() == [cache.path_for(fp)]
        assert cache.invalidate(fp) is True
        assert cache.entries() == []

    def test_clear_removes_everything(self, cache, kernels, space, dataset):
        cache.store(sweep_fingerprint(kernels, space), dataset)
        cache.store(
            sweep_fingerprint(kernels, reduced_space(2, 2, 2)),
            SweepRunner().run(kernels, reduced_space(2, 2, 2)),
        )
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_refuses_quarantined_dataset(self, cache, kernels, space):
        from repro.sweep.dataset import ScalingDataset

        clean = SweepRunner().run(kernels, space)
        perf = clean.perf.copy()
        perf[0] = np.nan
        quarantined = ScalingDataset(
            space, clean.kernel_records, perf,
            quarantined={kernels[0].full_name: "injected"},
        )
        with pytest.raises(DatasetError):
            cache.store(sweep_fingerprint(kernels, space), quarantined)

    def test_empty_cache_dir_is_fine(self, tmp_path):
        cache = SweepCache(tmp_path / "never_created")
        assert cache.entries() == []
        assert cache.clear() == 0


class TestCachedPaperDataset:
    def test_hit_skips_engine_entirely(self, cache, space, monkeypatch):
        kernels = all_kernels("proxyapps")
        monkeypatch.setattr(
            "repro.suites.all_kernels", lambda: kernels
        )
        first = cached_paper_dataset(space=space, cache=cache)
        assert cache.stores == 1
        reset_engine_call_count()
        second = cached_paper_dataset(space=space, cache=cache)
        assert engine_call_count() == 0, (
            "cached re-run must not invoke the engine"
        )
        np.testing.assert_array_equal(first.perf, second.perf)

    def test_grid_modes_share_entries(self, cache, space, monkeypatch):
        kernels = all_kernels("proxyapps")
        monkeypatch.setattr(
            "repro.suites.all_kernels", lambda: kernels
        )
        cached_paper_dataset(
            space=space, cache=cache, grid_mode=GridMode.STUDY
        )
        reset_engine_call_count()
        batch = cached_paper_dataset(
            space=space, cache=cache, grid_mode=GridMode.BATCH
        )
        assert engine_call_count() == 0
        study = SweepRunner(grid_mode=GridMode.STUDY).run(kernels, space)
        np.testing.assert_array_equal(batch.perf, study.perf)


class TestSingleFlight:
    """Concurrent misses on one fingerprint compute exactly once."""

    def test_lock_records_are_refcounted_away(self):
        from repro.sweep.cache import SingleFlight

        flight = SingleFlight()
        flight.acquire("a")
        assert flight.active_keys() == ["a"]
        flight.acquire("b")
        assert flight.active_keys() == ["a", "b"]
        flight.release("a")
        flight.release("b")
        assert flight.active_keys() == []

    def test_distinct_keys_do_not_contend(self):
        from repro.sweep.cache import SingleFlight

        flight = SingleFlight()
        flight.acquire("a")
        # Holding "a" must not block "b" — acquire on a fresh key
        # succeeds immediately on the same thread.
        flight.acquire("b")
        flight.release("b")
        flight.release("a")

    def test_racing_misses_compute_once_and_agree(
        self, cache, kernels, space
    ):
        import threading

        fp = sweep_fingerprint(kernels, space)
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        compute_calls = []
        results = [None] * n_threads

        def compute():
            compute_calls.append(1)
            return SweepRunner().run(kernels, space)

        def racer(slot):
            barrier.wait()
            results[slot] = cache.load_or_compute(fp, compute)

        threads = [
            threading.Thread(target=racer, args=(slot,))
            for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(compute_calls) == 1, (
            "single-flight must collapse concurrent misses"
        )
        assert cache.stores == 1
        reference = results[0]
        for result in results[1:]:
            np.testing.assert_array_equal(result.perf, reference.perf)
            assert result.kernel_names == reference.kernel_names
        # Every thread except the compute winner found the entry
        # exactly once — at its first look or at the double-check
        # inside the lock, which deliberately counts no second miss.
        assert cache.hits == n_threads - 1
        assert 1 <= cache.misses <= n_threads
        # Everything settled: no key left in flight.
        assert cache._single_flight.active_keys() == []

    def test_second_call_is_a_pure_hit(self, cache, kernels, space):
        fp = sweep_fingerprint(kernels, space)
        first = cache.load_or_compute(
            fp, lambda: SweepRunner().run(kernels, space)
        )

        def explode():
            raise AssertionError("hit must not recompute")

        second = cache.load_or_compute(fp, explode)
        np.testing.assert_array_equal(second.perf, first.perf)
        assert cache.stores == 1

    def test_quarantined_result_is_returned_but_never_stored(
        self, cache, kernels, space
    ):
        from repro.sweep.dataset import ScalingDataset

        fp = sweep_fingerprint(kernels, space)
        clean = SweepRunner().run(kernels, space)
        perf = clean.perf.copy()
        perf[0] = np.nan
        quarantined = ScalingDataset(
            space, clean.kernel_records, perf,
            quarantined={kernels[0].full_name: "injected"},
        )
        result = cache.load_or_compute(fp, lambda: quarantined)
        assert result.quarantined
        assert cache.stores == 0
        assert not cache.path_for(fp).exists()


class TestDefaultDirectory:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env_cache"))
        assert default_cache_dir() == tmp_path / "env_cache"
        assert SweepCache().cache_dir == tmp_path / "env_cache"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().name == "gpuscale"
