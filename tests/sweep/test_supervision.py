"""Worker supervision: timeouts, retries, degradation, pool fallback.

Every test injects a real failure (worker exception, process exit, or
hang) through the fault engine and asserts the parallel runner still
delivers the bit-exact serial dataset.
"""

import multiprocessing

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.suites import all_kernels
from repro.sweep import (
    FaultKind,
    FaultSpec,
    ParallelSweepRunner,
    SweepRunner,
    reduced_space,
)


@pytest.fixture(scope="module")
def kernels():
    return all_kernels("proxyapps")


@pytest.fixture(scope="module")
def space():
    return reduced_space(4, 4, 4)


@pytest.fixture(scope="module")
def clean_dataset(kernels, space):
    return SweepRunner().run(kernels, space)


class TestWorkerFailureSurfacing:
    def test_strict_worker_error_names_kernel(self, kernels, space):
        target = kernels[5].full_name
        runner = ParallelSweepRunner(
            workers=3, retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                              scope="worker", message="worker boom")],
        )
        with pytest.raises(SimulationError) as excinfo:
            runner.run(kernels, space, strict=True)
        assert excinfo.value.kernel_name == target
        assert "worker boom" in str(excinfo.value)

    def test_non_strict_worker_error_quarantines(
        self, kernels, space, clean_dataset
    ):
        target = kernels[5].full_name
        runner = ParallelSweepRunner(
            workers=3, retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                              scope="worker", message="worker boom")],
        )
        dataset = runner.run(kernels, space, strict=False)
        assert dataset.quarantined == {target: "worker boom"}
        healthy = dataset.healthy()
        np.testing.assert_array_equal(
            healthy.perf,
            clean_dataset.subset(healthy.kernel_names).perf,
        )


class TestCrashRecovery:
    def test_worker_crash_retries_then_degrades_to_serial(
        self, kernels, space, clean_dataset
    ):
        """A worker that always dies: retry on a fresh pool, then run
        the poisoned chunk in-process (where the fault is inert)."""
        runner = ParallelSweepRunner(
            workers=3, chunk_timeout_s=2.0, max_retries=1,
            retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.EXIT, scope="worker",
                              kernel_name=kernels[5].full_name)],
        )
        dataset = runner.run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)
        stats = runner.last_stats
        assert stats.retries == 1
        assert stats.degraded_chunks == 1
        assert stats.timeouts == 2
        assert stats.worker_errors

    def test_transient_crash_recovers_on_retry(
        self, kernels, space, clean_dataset, tmp_path
    ):
        """A worker that dies once: the cross-process trip counter lets
        the retry succeed without serial degradation."""
        runner = ParallelSweepRunner(
            workers=3, chunk_timeout_s=2.0, max_retries=2,
            retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.EXIT, scope="worker",
                              kernel_name=kernels[5].full_name,
                              max_trips=1,
                              state_path=str(tmp_path / "trips"))],
        )
        dataset = runner.run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)
        stats = runner.last_stats
        assert stats.retries == 1
        assert stats.degraded_chunks == 0

    def test_hung_worker_times_out_and_degrades(
        self, kernels, space, clean_dataset
    ):
        """The old runner blocked forever on a hung worker; now the
        chunk times out and completes serially."""
        runner = ParallelSweepRunner(
            workers=3, chunk_timeout_s=1.0, max_retries=0,
            retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.HANG, scope="worker",
                              kernel_name=kernels[5].full_name,
                              hang_s=30.0)],
        )
        dataset = runner.run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)
        assert runner.last_stats.timeouts == 1
        assert runner.last_stats.degraded_chunks == 1


class TestPoolUnavailable:
    def test_falls_back_to_serial_when_pool_cannot_spawn(
        self, kernels, space, clean_dataset, monkeypatch
    ):
        def no_pool(*args, **kwargs):
            raise OSError("process spawning forbidden")

        monkeypatch.setattr(multiprocessing, "Pool", no_pool)
        runner = ParallelSweepRunner(workers=3)
        dataset = runner.run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)
        assert runner.last_stats.pool_unavailable


class TestProgressAccounting:
    def test_degraded_chunks_counted_exactly_once(self, kernels, space):
        calls = []
        runner = ParallelSweepRunner(
            workers=3, chunk_timeout_s=1.0, max_retries=0,
            retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.HANG, scope="worker",
                              kernel_name=kernels[5].full_name,
                              hang_s=30.0)],
        )
        runner.run(
            kernels, space, progress=lambda d, t: calls.append((d, t))
        )
        done = [d for d, _ in calls]
        assert done == sorted(done)
        assert calls[-1] == (len(kernels), len(kernels))
        assert all(t == len(kernels) for _, t in calls)
        # Exactly one tick per chunk: the degraded chunk is not
        # double-counted by its failed pool attempt.
        assert len(done) == len(set(done))

    def test_retried_chunks_counted_exactly_once(
        self, kernels, space, tmp_path
    ):
        calls = []
        runner = ParallelSweepRunner(
            workers=3, chunk_timeout_s=2.0, max_retries=2,
            retry_backoff_s=0,
            faults=[FaultSpec(kind=FaultKind.EXIT, scope="worker",
                              kernel_name=kernels[5].full_name,
                              max_trips=1,
                              state_path=str(tmp_path / "trips"))],
        )
        runner.run(
            kernels, space, progress=lambda d, t: calls.append((d, t))
        )
        done = [d for d, _ in calls]
        assert done == sorted(done)
        assert calls[-1] == (len(kernels), len(kernels))
        assert len(done) == len(set(done))
