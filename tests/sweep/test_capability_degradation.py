"""Capability degradation through the sweep stack (satellite of the
engine-registry refactor).

A registry-registered *point-only* engine must flow through
:class:`SweepRunner` and :class:`ParallelSweepRunner` exactly like the
built-in fallback paths did pre-registry: grid requests degrade to the
point loop bit-identically to the scalar oracle, study requests degrade
to per-kernel grids, failures keep per-kernel quarantine attribution,
and checkpointed campaigns resume bit-exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.engine import (
    EngineCapabilities,
    EngineDescriptor,
    register_engine,
    unregister_engine,
)
from repro.gpu.interval_model import IntervalModel
from repro.gpu.simulator import GpuSimulator
from repro.sweep.campaign import CampaignRunner
from repro.sweep.parallel import ParallelSweepRunner
from repro.sweep.runner import SweepRunner

POINT_ONLY = "test-point-only"
GRUDGE = "test-grudge"

#: The kernel the grudge engine refuses to simulate.
GRUDGE_TARGET = "probe/latency_probe.main"


class PointOnlyEngine:
    """The scalar oracle re-registered without any grid capability."""

    supports_point = True
    supports_grid = False
    supports_study = False

    def __init__(self):
        self._oracle = IntervalModel()

    def descriptor(self):
        return EngineDescriptor(name=POINT_ONLY, family=POINT_ONLY)

    def simulate(self, kernel, config):
        return self._oracle.simulate(kernel, config)


class GrudgeEngine(PointOnlyEngine):
    """Point-only engine that fails one specific kernel."""

    def descriptor(self):
        return EngineDescriptor(name=GRUDGE, family=GRUDGE)

    def simulate(self, kernel, config):
        if kernel.full_name == GRUDGE_TARGET:
            raise SimulationError(kernel.full_name, "holds a grudge")
        return super().simulate(kernel, config)


@pytest.fixture
def point_only_engine():
    register_engine(
        POINT_ONLY,
        PointOnlyEngine,
        capabilities=EngineCapabilities(point=True),
        summary="point-only oracle for degradation tests",
    )
    yield POINT_ONLY
    unregister_engine(POINT_ONLY)


@pytest.fixture
def grudge_engine():
    register_engine(
        GRUDGE,
        GrudgeEngine,
        capabilities=EngineCapabilities(point=True),
        summary="point-only engine failing one kernel",
    )
    yield GRUDGE
    unregister_engine(GRUDGE)


class TestPointLoopDegradation:
    def test_facade_degrades_grid_to_point_loop(
        self, point_only_engine, archetype_kernels, small_space
    ):
        degraded = GpuSimulator(point_only_engine).simulate_grid(
            archetype_kernels[0], small_space
        )
        oracle = GpuSimulator("interval").simulate_grid(
            archetype_kernels[0], small_space, mode="scalar"
        )
        np.testing.assert_array_equal(degraded.time_s, oracle.time_s)
        np.testing.assert_array_equal(
            degraded.items_per_second, oracle.items_per_second
        )

    def test_sweep_runner_matches_scalar_oracle_bitwise(
        self, point_only_engine, archetype_kernels, small_space
    ):
        degraded = SweepRunner(engine=point_only_engine).run(
            archetype_kernels, small_space
        )
        oracle = SweepRunner(engine="interval", grid_mode="scalar").run(
            archetype_kernels, small_space
        )
        np.testing.assert_array_equal(degraded.perf, oracle.perf)

    def test_study_mode_degrades_to_per_kernel_loop(
        self, point_only_engine, archetype_kernels, small_space
    ):
        study = SweepRunner(
            engine=point_only_engine, grid_mode="study"
        ).run(archetype_kernels, small_space)
        batch = SweepRunner().run(archetype_kernels, small_space)
        np.testing.assert_allclose(
            study.perf, batch.perf, rtol=1e-12, atol=0
        )


class TestQuarantineAttribution:
    def test_point_only_failure_quarantines_one_kernel(
        self, grudge_engine, archetype_kernels, small_space
    ):
        dataset = SweepRunner(engine=grudge_engine).run(
            archetype_kernels, small_space, strict=False
        )
        assert set(dataset.quarantined) == {GRUDGE_TARGET}
        assert "grudge" in dataset.quarantined[GRUDGE_TARGET]
        row = dataset.kernel_cube(GRUDGE_TARGET)
        assert np.isnan(row).all()
        healthy = dataset.healthy()
        assert np.isfinite(healthy.perf).all()

    def test_strict_failure_names_the_kernel(
        self, grudge_engine, archetype_kernels, small_space
    ):
        with pytest.raises(SimulationError) as excinfo:
            SweepRunner(engine=grudge_engine).run(
                archetype_kernels, small_space, strict=True
            )
        assert excinfo.value.kernel_name == GRUDGE_TARGET


class TestParallelDegradation:
    def test_parallel_runner_matches_serial_bitwise(
        self, point_only_engine, archetype_kernels, small_space
    ):
        parallel = ParallelSweepRunner(
            engine=point_only_engine, workers=2, chunk_timeout_s=120.0
        ).run(archetype_kernels, small_space)
        serial = SweepRunner(engine=point_only_engine).run(
            archetype_kernels, small_space
        )
        np.testing.assert_array_equal(parallel.perf, serial.perf)

    def test_parallel_quarantine_attribution_survives_workers(
        self, grudge_engine, archetype_kernels, small_space
    ):
        dataset = ParallelSweepRunner(
            engine=grudge_engine, workers=2, chunk_timeout_s=120.0
        ).run(archetype_kernels, small_space, strict=False)
        assert set(dataset.quarantined) == {GRUDGE_TARGET}


class TestCampaignDegradation:
    def test_campaign_resume_is_bit_exact(
        self, point_only_engine, archetype_kernels, small_space, tmp_path
    ):
        journal = tmp_path / "journal"
        runner = CampaignRunner(
            journal,
            runner=SweepRunner(engine=point_only_engine),
            chunk_size=4,
        )
        first, report = runner.run(archetype_kernels, small_space)
        assert report.executed_chunks == report.total_chunks

        resumed, resume_report = runner.run(
            archetype_kernels, small_space, resume=True
        )
        assert resume_report.resumed_chunks == report.total_chunks
        assert resume_report.executed_chunks == 0
        np.testing.assert_array_equal(first.perf, resumed.perf)

    def test_campaign_resume_preserves_quarantine(
        self, grudge_engine, archetype_kernels, small_space, tmp_path
    ):
        journal = tmp_path / "journal"
        runner = CampaignRunner(
            journal,
            runner=SweepRunner(engine=grudge_engine),
            chunk_size=4,
            strict=False,
        )
        first, _ = runner.run(archetype_kernels, small_space)
        resumed, report = runner.run(
            archetype_kernels, small_space, resume=True
        )
        assert report.resumed_chunks == report.total_chunks
        assert set(resumed.quarantined) == {GRUDGE_TARGET}
        np.testing.assert_array_equal(
            np.nan_to_num(first.perf), np.nan_to_num(resumed.perf)
        )
