"""SweepRunner: dataset collection over kernels x configurations."""

import pytest

import numpy as np

from repro.errors import DatasetError
from repro.gpu import GpuSimulator, GridMode
from repro.kernels import compute_kernel, streaming_kernel
from repro.sweep import SweepRunner, reduced_space


@pytest.fixture
def space():
    return reduced_space(4, 4, 4)


class TestRun:
    def test_dataset_dimensions(self, space):
        kernels = [compute_kernel("a", suite="t"),
                   streaming_kernel("b", suite="t")]
        dataset = SweepRunner().run(kernels, space)
        assert dataset.perf.shape == (2,) + space.shape
        assert dataset.kernel_names == ["t/a.main", "t/b.main"]

    def test_values_match_direct_simulation(self, space):
        kernel = compute_kernel("a", suite="t")
        dataset = SweepRunner().run([kernel], space)
        sim = GpuSimulator()
        config = space.config(1, 1, 1)
        expected = sim.performance(kernel, config)
        assert dataset.perf[0, 1, 1, 1] == pytest.approx(expected)

    def test_empty_kernel_list_rejected(self, space):
        with pytest.raises(DatasetError):
            SweepRunner().run([], space)

    def test_duplicate_kernels_rejected(self, space):
        kernel = compute_kernel("a", suite="t")
        with pytest.raises(DatasetError):
            SweepRunner().run([kernel, kernel], space)

    def test_scalar_mode_matches_batch(self, space):
        """The per-point oracle and the batch grid path agree."""
        kernels = [compute_kernel("a", suite="t"),
                   streaming_kernel("b", suite="t")]
        batch = SweepRunner().run(kernels, space)
        scalar = SweepRunner(grid_mode=GridMode.SCALAR).run(kernels, space)
        np.testing.assert_allclose(
            batch.perf, scalar.perf, rtol=1e-12
        )

    def test_default_grid_mode_is_batch(self):
        assert SweepRunner().grid_mode is GridMode.BATCH

    def test_progress_callback_called_per_kernel(self, space):
        calls = []
        kernels = [compute_kernel("a", suite="t"),
                   streaming_kernel("b", suite="t")]
        SweepRunner().run(kernels, space,
                          progress=lambda d, t: calls.append((d, t)))
        assert calls == [(1, 2), (2, 2)]


class TestPaperScale:
    def test_full_sweep_shape(self, paper_dataset):
        assert paper_dataset.perf.shape == (267, 11, 9, 9)
        assert paper_dataset.space.size == 891

    def test_full_sweep_covers_all_suites(self, paper_dataset):
        assert len(paper_dataset.suites()) == 8
