"""Axis views: slices, surfaces, normalisation."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.sweep import (
    Axis,
    axis_slice,
    axis_values,
    clock_surface,
    end_to_end_speedups,
    normalised_cube,
)


class TestAxisSlice:
    def test_slice_lengths_match_axes(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        for axis in Axis:
            slice_ = axis_slice(archetype_dataset, name, axis)
            assert len(slice_.perf) == len(
                axis_values(archetype_dataset, axis)
            )

    def test_default_pins_other_axes_at_max(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        cube = archetype_dataset.kernel_cube(name)
        slice_ = axis_slice(archetype_dataset, name, Axis.CU)
        np.testing.assert_allclose(slice_.perf, cube[:, -1, -1])

    def test_explicit_fixed_indices(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        cube = archetype_dataset.kernel_cube(name)
        slice_ = axis_slice(archetype_dataset, name, Axis.ENGINE,
                            fixed=(0, 0))
        np.testing.assert_allclose(slice_.perf, cube[0, :, 0])

    def test_fixed_out_of_range(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        with pytest.raises(DatasetError):
            axis_slice(archetype_dataset, name, Axis.CU, fixed=(99, 0))

    def test_speedup_normalised_to_first_point(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        slice_ = axis_slice(archetype_dataset, name, Axis.MEMORY)
        assert slice_.speedup[0] == pytest.approx(1.0)

    def test_gain_and_peak_gain(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        slice_ = axis_slice(archetype_dataset, name, Axis.CU)
        assert slice_.peak_gain >= slice_.gain

    def test_knob_ratio(self, archetype_dataset):
        slice_ = axis_slice(
            archetype_dataset, archetype_dataset.kernel_names[0], Axis.CU
        )
        assert slice_.knob_ratio == pytest.approx(11.0)


class TestSurfacesAndCubes:
    def test_clock_surface_normalised(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        surface = clock_surface(archetype_dataset, name)
        assert surface[0, 0] == pytest.approx(1.0)
        n_cu, n_eng, n_mem = archetype_dataset.space.shape
        assert surface.shape == (n_eng, n_mem)

    def test_normalised_cube_base_corner(self, archetype_dataset):
        name = archetype_dataset.kernel_names[0]
        cube = normalised_cube(archetype_dataset, name)
        assert cube[0, 0, 0] == pytest.approx(1.0)

    def test_end_to_end_speedups_positive(self, archetype_dataset):
        speedups = end_to_end_speedups(archetype_dataset)
        assert speedups.shape == (archetype_dataset.num_kernels,)
        assert np.all(speedups > 0)
