"""Sweep-cache safety under concurrent readers and writers.

The query service's engine worker, parallel sweeps, and test
harnesses may all hit one cache directory at once. The contract: a
racing read returns either ``None`` (miss) or a *complete, valid*
dataset — never a torn file, never a propagated error — and
concurrent same-fingerprint stores never interleave their bytes
(per-call-unique temp names + ``os.replace``).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.suites import all_kernels
from repro.sweep import SweepCache, SweepRunner, reduced_space, sweep_fingerprint


@pytest.fixture(scope="module")
def kernels():
    return all_kernels("proxyapps")


@pytest.fixture(scope="module")
def space():
    return reduced_space(4, 4, 4)


@pytest.fixture(scope="module")
def dataset(kernels, space):
    return SweepRunner().run(kernels, space)


@pytest.fixture
def cache(tmp_path):
    return SweepCache(tmp_path / "cache")


def _run_threads(workers):
    """Run every worker concurrently; re-raise the first failure."""
    errors = []

    def guarded(fn):
        try:
            fn()
        except BaseException as exc:  # noqa: B036 - surface everything
            errors.append(exc)

    threads = [
        threading.Thread(target=guarded, args=(fn,)) for fn in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestHammer:
    def test_store_load_invalidate_hammer(
        self, cache, kernels, space, dataset
    ):
        """Racing store/load/invalidate never tears or errors."""
        fingerprint = sweep_fingerprint(kernels, space, "interval")
        rounds = 30
        loaded_ok = []

        def storer():
            for _ in range(rounds):
                cache.store(fingerprint, dataset)

        def loader():
            for _ in range(rounds * 2):
                result = cache.load(fingerprint)
                if result is not None:
                    # Any successful read is a complete dataset,
                    # bit-identical to what some writer stored.
                    np.testing.assert_array_equal(
                        result.perf, dataset.perf
                    )
                    loaded_ok.append(True)

        def invalidator():
            for _ in range(rounds):
                cache.invalidate(fingerprint)

        _run_threads([storer, storer, loader, loader, invalidator])
        # The final store either survived or was invalidated; a fresh
        # store must round-trip regardless of the hammering above.
        cache.store(fingerprint, dataset)
        final = cache.load(fingerprint)
        assert final is not None
        np.testing.assert_array_equal(final.perf, dataset.perf)
        assert loaded_ok, "hammer never observed a successful read"

    def test_corrupt_writes_racing_reads(
        self, cache, kernels, space, dataset
    ):
        """A vandal writing garbage entries only ever causes misses."""
        fingerprint = sweep_fingerprint(kernels, space, "interval")
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        path = cache.path_for(fingerprint)
        rounds = 30

        def vandal():
            for i in range(rounds):
                path.write_bytes(b"\x00garbage" * (i + 1))

        def storer():
            for _ in range(rounds):
                cache.store(fingerprint, dataset)

        def loader():
            for _ in range(rounds * 2):
                result = cache.load(fingerprint)
                if result is not None:
                    np.testing.assert_array_equal(
                        result.perf, dataset.perf
                    )

        _run_threads([vandal, storer, loader, loader])

    def test_concurrent_distinct_fingerprints(
        self, cache, kernels, space, dataset
    ):
        """Writers on distinct keys never cross-contaminate."""
        subsets = [
            dataset.subset(dataset.kernel_names[i::3]) for i in range(3)
        ]
        fingerprints = [
            sweep_fingerprint(
                [k for k in kernels if k.full_name in s.kernel_names],
                space,
                "interval",
            )
            for s in subsets
        ]
        assert len(set(fingerprints)) == 3

        def worker(index):
            def run():
                for _ in range(20):
                    cache.store(fingerprints[index], subsets[index])
                    result = cache.load(fingerprints[index])
                    if result is not None:
                        np.testing.assert_array_equal(
                            result.perf, subsets[index].perf
                        )
            return run

        _run_threads([worker(i) for i in range(3)])
        for index in range(3):
            final = cache.load(fingerprints[index])
            assert final is not None
            np.testing.assert_array_equal(
                final.perf, subsets[index].perf
            )

    def test_stat_counters_consistent_under_threads(
        self, cache, kernels, space, dataset
    ):
        """hits + misses equals total loads even under contention."""
        fingerprint = sweep_fingerprint(kernels, space, "interval")
        cache.store(fingerprint, dataset)
        loads_per_thread = 50
        n_threads = 4

        def loader():
            for _ in range(loads_per_thread):
                cache.load(fingerprint)

        _run_threads([loader] * n_threads)
        assert cache.hits + cache.misses == loads_per_thread * n_threads
        assert cache.stores == 1
