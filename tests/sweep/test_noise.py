"""Measurement-noise model."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.sweep.noise import NoiseModel, perturb


class TestNoiseModel:
    def test_zero_sigma_is_identity(self, archetype_dataset):
        noisy = NoiseModel(sigma=0.0).apply(archetype_dataset)
        assert noisy is archetype_dataset

    def test_deterministic_for_seed(self, archetype_dataset):
        a = perturb(archetype_dataset, sigma=0.02, seed=3)
        b = perturb(archetype_dataset, sigma=0.02, seed=3)
        np.testing.assert_array_equal(a.perf, b.perf)

    def test_different_seeds_differ(self, archetype_dataset):
        a = perturb(archetype_dataset, sigma=0.02, seed=3)
        b = perturb(archetype_dataset, sigma=0.02, seed=4)
        assert not np.array_equal(a.perf, b.perf)

    def test_noise_magnitude_matches_sigma(self, archetype_dataset):
        noisy = perturb(archetype_dataset, sigma=0.02, seed=1)
        ratio = np.log(noisy.perf / archetype_dataset.perf)
        assert abs(float(ratio.std()) - 0.02) < 0.005
        assert abs(float(ratio.mean())) < 0.005

    def test_preserves_metadata(self, archetype_dataset):
        noisy = perturb(archetype_dataset, sigma=0.05)
        assert noisy.kernel_names == archetype_dataset.kernel_names
        assert noisy.space == archetype_dataset.space

    def test_values_stay_positive(self, archetype_dataset):
        noisy = perturb(archetype_dataset, sigma=0.5, seed=2)
        assert (noisy.perf > 0).all()

    def test_rejects_negative_sigma(self):
        with pytest.raises(DatasetError):
            NoiseModel(sigma=-0.1)
