"""Campaign journaling: checkpoint, kill, resume, quarantine report."""

import numpy as np
import pytest

from repro.errors import CampaignError, SimulationError
from repro.gpu.simulator import GpuSimulator
from repro.suites import all_kernels
from repro.sweep import (
    CampaignRunner,
    FaultKind,
    FaultSpec,
    FaultyEngine,
    SweepRunner,
    reduced_space,
)
from repro.sweep.campaign import MANIFEST_NAME


@pytest.fixture(scope="module")
def kernels():
    return all_kernels("proxyapps")[:8]


@pytest.fixture(scope="module")
def space():
    return reduced_space(4, 4, 4)


@pytest.fixture(scope="module")
def clean_dataset(kernels, space):
    return SweepRunner().run(kernels, space)


def faulty_runner(specs):
    return SweepRunner(simulator=FaultyEngine(GpuSimulator(), specs))


class TestFreshCampaign:
    def test_matches_plain_runner_bit_exact(
        self, kernels, space, clean_dataset, tmp_path
    ):
        dataset, report = CampaignRunner(
            tmp_path / "journal", chunk_size=3
        ).run(kernels, space)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)
        assert dataset.kernel_names == clean_dataset.kernel_names
        assert report.total_chunks == 3
        assert report.executed_chunks == 3
        assert report.resumed_chunks == 0
        assert report.quarantined_count == 0

    def test_journal_has_manifest_and_shards(
        self, kernels, space, tmp_path
    ):
        journal = tmp_path / "journal"
        CampaignRunner(journal, chunk_size=3).run(kernels, space)
        assert (journal / MANIFEST_NAME).exists()
        assert sorted(p.name for p in journal.glob("chunk_*.npz")) == [
            "chunk_0000.npz", "chunk_0001.npz", "chunk_0002.npz"
        ]

    def test_no_temp_files_left_behind(self, kernels, space, tmp_path):
        journal = tmp_path / "journal"
        CampaignRunner(journal, chunk_size=3).run(kernels, space)
        assert not list(journal.glob("*.tmp*"))

    def test_progress_counts_cumulative_rows(
        self, kernels, space, tmp_path
    ):
        calls = []
        CampaignRunner(tmp_path / "journal", chunk_size=3).run(
            kernels, space, progress=lambda d, t: calls.append((d, t))
        )
        assert calls == [(3, 8), (6, 8), (8, 8)]

    def test_rejects_bad_chunk_size(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRunner(tmp_path / "journal", chunk_size=0)


class TestKillAndResume:
    def test_resume_after_mid_campaign_kill_is_bit_exact(
        self, kernels, space, clean_dataset, tmp_path
    ):
        """The acceptance property: kill after any chunk, resume, and
        the final dataset is bit-exact with an uninterrupted run."""
        journal = tmp_path / "journal"
        killer = faulty_runner(
            [FaultSpec(kind=FaultKind.RAISE,
                       kernel_name=kernels[5].full_name,
                       message="killed mid-campaign")]
        )
        # Strict campaign: the injected fault aborts the run after the
        # first chunks have been journaled.
        with pytest.raises(SimulationError):
            CampaignRunner(journal, runner=killer, chunk_size=2,
                           strict=True).run(kernels, space)
        manifest_chunks = (journal / MANIFEST_NAME).read_text()
        assert "chunk_0000.npz" in manifest_chunks

        dataset, report = CampaignRunner(
            journal, chunk_size=2
        ).run(kernels, space, resume=True)
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)
        assert report.resumed_chunks == 2  # kernels 0..3 were journaled
        assert report.executed_chunks == 2
        assert report.quarantined_count == 0

    def test_resume_at_every_kill_point(
        self, kernels, space, clean_dataset, tmp_path
    ):
        """Interrupting at each successive chunk boundary always
        resumes to the same bit-exact dataset."""
        for kill_at in range(1, 4):
            journal = tmp_path / f"journal_{kill_at}"
            killer = faulty_runner(
                [FaultSpec(kind=FaultKind.RAISE,
                           kernel_name=kernels[2 * kill_at].full_name)]
            )
            with pytest.raises(SimulationError):
                CampaignRunner(journal, runner=killer, chunk_size=2,
                               strict=True).run(kernels, space)
            dataset, report = CampaignRunner(
                journal, chunk_size=2
            ).run(kernels, space, resume=True)
            np.testing.assert_array_equal(
                dataset.perf, clean_dataset.perf
            )
            assert report.resumed_chunks == kill_at

    def test_resume_of_complete_journal_executes_nothing(
        self, kernels, space, clean_dataset, tmp_path
    ):
        journal = tmp_path / "journal"
        CampaignRunner(journal, chunk_size=3).run(kernels, space)
        dataset, report = CampaignRunner(journal, chunk_size=3).run(
            kernels, space, resume=True
        )
        assert report.executed_chunks == 0
        assert report.resumed_chunks == 3
        np.testing.assert_array_equal(dataset.perf, clean_dataset.perf)

    def test_resume_without_journal_starts_fresh(
        self, kernels, space, tmp_path
    ):
        dataset, report = CampaignRunner(
            tmp_path / "journal", chunk_size=3
        ).run(kernels, space, resume=True)
        assert report.resumed_chunks == 0
        assert report.executed_chunks == 3

    def test_progress_includes_resumed_rows(
        self, kernels, space, tmp_path
    ):
        journal = tmp_path / "journal"
        CampaignRunner(journal, chunk_size=3).run(kernels, space)
        calls = []
        CampaignRunner(journal, chunk_size=3).run(
            kernels, space, resume=True,
            progress=lambda d, t: calls.append((d, t)),
        )
        assert calls == [(3, 8), (6, 8), (8, 8)]


class TestJournalSafety:
    def test_fingerprint_mismatch_rejected(
        self, kernels, space, tmp_path
    ):
        journal = tmp_path / "journal"
        CampaignRunner(journal, chunk_size=3).run(kernels, space)
        other_space = reduced_space(2, 2, 2)
        with pytest.raises(CampaignError, match="fingerprint"):
            CampaignRunner(journal, chunk_size=3).run(
                kernels, other_space, resume=True
            )

    def test_different_chunking_rejected(self, kernels, space, tmp_path):
        journal = tmp_path / "journal"
        CampaignRunner(journal, chunk_size=3).run(kernels, space)
        with pytest.raises(CampaignError, match="fingerprint"):
            CampaignRunner(journal, chunk_size=2).run(
                kernels, space, resume=True
            )

    def test_missing_shard_detected(self, kernels, space, tmp_path):
        journal = tmp_path / "journal"
        CampaignRunner(journal, chunk_size=3).run(kernels, space)
        (journal / "chunk_0001.npz").unlink()
        with pytest.raises(CampaignError, match="missing"):
            CampaignRunner(journal, chunk_size=3).run(
                kernels, space, resume=True
            )

    def test_corrupt_manifest_detected(self, kernels, space, tmp_path):
        journal = tmp_path / "journal"
        CampaignRunner(journal, chunk_size=3).run(kernels, space)
        (journal / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(CampaignError, match="corrupt"):
            CampaignRunner(journal, chunk_size=3).run(
                kernels, space, resume=True
            )


class TestQuarantine:
    def test_failing_kernel_quarantined_not_fatal(
        self, kernels, space, clean_dataset, tmp_path
    ):
        target = kernels[3].full_name
        runner = faulty_runner(
            [FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                       message="flaky model")]
        )
        dataset, report = CampaignRunner(
            tmp_path / "journal", runner=runner, chunk_size=2
        ).run(kernels, space)
        assert report.quarantined == {target: "flaky model"}
        assert any(
            target in line and "flaky model" in line
            for line in report.summary_lines()
        )
        assert np.isnan(dataset.kernel_cube(target)).all()
        healthy = dataset.healthy()
        np.testing.assert_array_equal(
            healthy.perf,
            clean_dataset.subset(healthy.kernel_names).perf,
        )

    def test_quarantine_survives_resume(self, kernels, space, tmp_path):
        journal = tmp_path / "journal"
        target = kernels[0].full_name
        runner = faulty_runner(
            [FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                       message="flaky model")]
        )
        CampaignRunner(journal, runner=runner, chunk_size=2).run(
            kernels, space
        )
        dataset, report = CampaignRunner(journal, chunk_size=2).run(
            kernels, space, resume=True
        )
        assert report.resumed_chunks == 4
        assert dataset.quarantined == {target: "flaky model"}

    def test_strict_campaign_fails_fast(self, kernels, space, tmp_path):
        runner = faulty_runner(
            [FaultSpec(kind=FaultKind.RAISE,
                       kernel_name=kernels[0].full_name)]
        )
        with pytest.raises(SimulationError):
            CampaignRunner(tmp_path / "journal", runner=runner,
                           chunk_size=2, strict=True).run(kernels, space)
