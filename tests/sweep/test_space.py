"""ConfigurationSpace: the 891-point grid and its indexing."""

import pytest

from repro.errors import ConfigurationError
from repro.sweep import PAPER_SPACE, ConfigurationSpace, reduced_space


class TestPaperSpace:
    def test_size_is_891(self):
        assert PAPER_SPACE.size == 891
        assert len(PAPER_SPACE) == 891

    def test_shape(self):
        assert PAPER_SPACE.shape == (11, 9, 9)

    def test_axis_ranges_match_abstract(self):
        cu, eng, mem = PAPER_SPACE.axis_ranges
        assert cu == pytest.approx(11.0)
        assert eng == pytest.approx(5.0)
        assert mem == pytest.approx(8.333, abs=0.01)

    def test_min_and_max_corners(self):
        assert PAPER_SPACE.min_config.cu_count == 4
        assert PAPER_SPACE.max_config.cu_count == 44
        assert PAPER_SPACE.max_config.engine_mhz == 1000.0

    def test_iteration_covers_every_point_once(self):
        labels = {c.label() for c in PAPER_SPACE}
        assert len(labels) == 891


class TestIndexing:
    def test_flat_round_trip(self):
        for flat in (0, 1, 95, 890):
            coords = PAPER_SPACE.unflatten(flat)
            assert PAPER_SPACE.flat_index(*coords) == flat

    def test_flat_order_matches_iteration(self):
        seventh = list(PAPER_SPACE)[7]
        coords = PAPER_SPACE.unflatten(7)
        assert PAPER_SPACE.config(*coords) == seventh

    def test_out_of_range_flat(self):
        with pytest.raises(ConfigurationError):
            PAPER_SPACE.unflatten(891)

    def test_out_of_range_coords(self):
        with pytest.raises(ConfigurationError):
            PAPER_SPACE.flat_index(11, 0, 0)


class TestValidation:
    def test_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError):
            ConfigurationSpace(cu_counts=())

    def test_rejects_unsorted_axis(self):
        with pytest.raises(ConfigurationError):
            ConfigurationSpace(cu_counts=(8, 4))

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(ConfigurationError):
            ConfigurationSpace(engine_mhz=(200.0, 200.0))


class TestReducedSpace:
    def test_keeps_axis_extremes(self):
        space = reduced_space(2, 2, 2)
        assert space.cu_counts[0] == 4 and space.cu_counts[-1] == 44
        assert space.engine_mhz[-1] == 1000.0
        assert space.memory_mhz[-1] == 1250.0

    def test_smaller_than_paper_grid(self):
        assert reduced_space(2, 2, 2).size < 891

    def test_round_trip_dict(self):
        space = reduced_space(3, 2, 4)
        assert ConfigurationSpace.from_dict(space.to_dict()) == space


class TestSerialisation:
    def test_round_trip_preserves_uarch(self):
        from repro.gpu.families import APU_SPACE

        restored = ConfigurationSpace.from_dict(APU_SPACE.to_dict())
        assert restored == APU_SPACE
        assert restored.uarch == APU_SPACE.uarch

    def test_round_trip_survives_json(self):
        import json

        from repro.gpu.families import APU_SPACE

        payload = json.loads(json.dumps(APU_SPACE.to_dict()))
        assert ConfigurationSpace.from_dict(payload) == APU_SPACE

    def test_legacy_payload_defaults_to_hawaii(self):
        from repro.gpu import HAWAII_UARCH

        payload = PAPER_SPACE.to_dict()
        del payload["uarch"]
        restored = ConfigurationSpace.from_dict(payload)
        assert restored.uarch is HAWAII_UARCH
        assert restored == PAPER_SPACE

    def test_uarch_rejects_unknown_fields(self):
        from repro.gpu import Microarchitecture

        with pytest.raises(ConfigurationError):
            Microarchitecture.from_dict({"warp_size": 32})
