"""Shared fixtures.

Two dataset tiers keep the suite fast:

* ``archetype_dataset`` — one kernel per archetype over a reduced grid
  (~1s): used by most taxonomy/analysis unit tests.
* ``paper_dataset`` — the full 267 x 891 sweep (~7s, session-scoped):
  used by integration tests and anything asserting catalog-scale facts.
"""

from __future__ import annotations

import pytest

from repro.gpu import HardwareConfig, W9100_LIKE
from repro.kernels import ARCHETYPE_BUILDERS
from repro.suites import all_kernels
from repro.sweep import SweepRunner, collect_paper_dataset, reduced_space


@pytest.fixture(scope="session")
def archetype_kernels():
    """One representative kernel per archetype."""
    return [
        builder(f"{kind}_probe", suite="probe")
        for kind, builder in ARCHETYPE_BUILDERS.items()
    ]


@pytest.fixture(scope="session")
def small_space():
    """A strided 6 x 5 x 5 grid keeping every axis extreme."""
    return reduced_space(2, 2, 2)


@pytest.fixture(scope="session")
def archetype_dataset(archetype_kernels):
    """Archetype kernels swept over the full paper grid.

    Eleven kernels x 891 configurations is well under a second, and
    full axis resolution keeps the taxonomy's end-of-axis features
    meaningful in the tests that assert archetype labels.
    """
    from repro.sweep import PAPER_SPACE

    return SweepRunner().run(archetype_kernels, PAPER_SPACE)


@pytest.fixture(scope="session")
def paper_dataset():
    """The full paper-scale dataset (collected once per session)."""
    return collect_paper_dataset()


@pytest.fixture(scope="session")
def paper_taxonomy(paper_dataset):
    """Taxonomy labels over the full dataset."""
    from repro.taxonomy import classify

    return classify(paper_dataset)


@pytest.fixture
def flagship() -> HardwareConfig:
    """The full-size discrete configuration."""
    return W9100_LIKE


@pytest.fixture(scope="session")
def catalog_kernels():
    """Every kernel in the catalog."""
    return all_kernels()
