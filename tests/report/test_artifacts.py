"""Artifact writer."""

import json

from repro.report import ExperimentContext, write_artifacts


class TestWriteArtifacts:
    def test_writes_markdown_json_and_index(self, tmp_path,
                                            paper_dataset):
        ctx = ExperimentContext()
        ctx._dataset = paper_dataset
        written = write_artifacts(tmp_path, ["T1", "T2"], ctx)

        assert set(written) == {"T1", "T2"}
        for experiment_id, path in written.items():
            assert path.exists()
            content = path.read_text()
            assert content.startswith(f"# {experiment_id}:")
            data = json.loads(
                (tmp_path / f"{experiment_id}.json").read_text()
            )
            assert data

        index = (tmp_path / "INDEX.md").read_text()
        assert "T1.md" in index and "T2.md" in index

    def test_creates_missing_directory(self, tmp_path, paper_dataset):
        ctx = ExperimentContext()
        ctx._dataset = paper_dataset
        target = tmp_path / "deep" / "dir"
        write_artifacts(target, ["T1"], ctx)
        assert (target / "T1.md").exists()

    def test_t1_json_round_trips_totals(self, tmp_path, paper_dataset):
        ctx = ExperimentContext()
        ctx._dataset = paper_dataset
        write_artifacts(tmp_path, ["T1"], ctx)
        data = json.loads((tmp_path / "T1.json").read_text())
        assert data["total_kernels"] == 267


class TestStudySummary:
    def test_summary_carries_headline_numbers(self, paper_dataset):
        from repro.report import ExperimentContext, study_summary

        ctx = ExperimentContext()
        ctx._dataset = paper_dataset
        text = study_summary(ctx)
        assert "267 GPGPU kernels from 97 programs" in text
        assert "891 hardware configurations" in text
        assert "lose performance when more processing units" in text
        assert "new benchmarks or new inputs are warranted" in text
