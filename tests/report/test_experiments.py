"""Experiment registry: every artifact regenerates with sane content.

The benchmarks/ harness asserts the *shape claims* per experiment;
these tests cover registry mechanics and structural integrity.
"""

import pytest

from repro.report import (
    EXPERIMENTS,
    ExperimentContext,
    run_all,
    run_experiment,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


@pytest.fixture(scope="module")
def results(ctx):
    return run_all(ctx)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "S1",
            "T1", "T2", "T3", "T4", "T5",
            "F1", "F2", "F3", "F4", "F5",
            "F6", "F7", "F8", "F9", "F10",
        }

    def test_unknown_id_rejected(self, ctx):
        with pytest.raises(KeyError):
            run_experiment("F99", ctx)

    def test_context_memoises_dataset(self, ctx):
        assert ctx.dataset is ctx.dataset
        assert ctx.taxonomy is ctx.taxonomy


class TestArtifacts:
    def test_every_result_has_text_and_data(self, results):
        for eid, result in results.items():
            assert result.experiment_id == eid
            assert result.text.strip()
            assert isinstance(result.data, dict) and result.data

    def test_t1_totals(self, results):
        data = results["T1"].data
        assert data["total_programs"] == 97
        assert data["total_kernels"] == 267

    def test_t2_grid(self, results):
        assert results["T2"].data["size"] == 891

    def test_t3_counts_sum(self, results):
        data = results["T3"].data
        assert sum(data["counts"].values()) == data["total"] == 267

    def test_t4_suites_complete(self, results):
        assert len(results["T4"].data) == 8

    def test_figure_series_non_empty(self, results):
        for fid in ("F1", "F2", "F3", "F5"):
            assert results[fid].data["kernels"]

    def test_f9_contains_overall_median(self, results):
        assert "all" in results["F9"].data["medians"]
