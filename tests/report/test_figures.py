"""Figure structures and text rendering."""

import numpy as np
import pytest

from repro.report import (
    Figure,
    FigureSeries,
    render_figure,
    render_heatmap,
    sparkline,
)


class TestFigureSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FigureSeries("x", (1.0, 2.0), (1.0,))

    def test_series_lookup(self):
        figure = Figure(
            "F0", "t", "x", "y",
            (FigureSeries("a", (1.0,), (1.0,)),),
        )
        assert figure.series_by_label("a").label == "a"
        with pytest.raises(KeyError):
            figure.series_by_label("b")


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_ends_high(self):
        line = sparkline([0, 1, 2, 3, 10])
        assert line[-1] == "█"
        assert line[0] == "▁"

    def test_empty_series(self):
        assert sparkline([]) == ""


class TestRenderers:
    def test_render_figure_contains_series_labels(self):
        figure = Figure(
            "F1", "title", "x", "y",
            (
                FigureSeries("alpha", (1.0, 2.0), (1.0, 2.0)),
                FigureSeries("beta", (1.0, 2.0), (1.0, 0.5)),
            ),
        )
        text = render_figure(figure)
        assert "alpha" in text and "beta" in text
        assert "F1" in text

    def test_render_heatmap_shape(self):
        grid = np.arange(12, dtype=float).reshape(3, 4)
        text = render_heatmap(grid, [1, 2, 3], [10, 20, 30, 40],
                              title="H")
        lines = text.splitlines()
        assert lines[0] == "H"
        # 3 data rows + separator + axis footer.
        assert len(lines) == 6

    def test_render_heatmap_constant_grid(self):
        grid = np.ones((2, 2))
        text = render_heatmap(grid, [1, 2], [1, 2])
        assert text  # no division-by-zero on a flat surface


class TestCsvExport:
    def test_long_format(self):
        from repro.report import figure_to_csv

        figure = Figure(
            "F1", "t", "x", "y",
            (
                FigureSeries("a", (1.0, 2.0), (10.0, 20.0)),
                FigureSeries("b", (1.0,), (5.0,)),
            ),
        )
        csv = figure_to_csv(figure)
        lines = csv.strip().splitlines()
        assert lines[0] == "series,x,y"
        assert "a,1,10" in lines
        assert "b,1,5" in lines
        assert len(lines) == 4
