"""ASCII table rendering."""

import pytest

from repro.report import render_kv, render_table
from repro.report.tables import format_cell


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(3.14159, precision=3) == "3.142"

    def test_bool_rendering(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_and_str(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_numeric_columns_right_aligned(self):
        text = render_table(["k", "v"], [["a", 5], ["b", 500]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("  5")
        assert rows[1].endswith("500")

    def test_mismatched_row_length_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_allowed(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_render_kv(self):
        text = render_kv([["total", 891]], title="Summary")
        assert "total" in text and "891" in text
