"""Product presets and simulator facade."""

import pytest

from repro.gpu import (
    APU_LIKE,
    EMBEDDED,
    Engine,
    GpuSimulator,
    PRODUCTS,
    W9100_LIKE,
    product,
    simulate,
)
from repro.kernels import compute_kernel


class TestProducts:
    def test_flagship_matches_w9100(self):
        assert W9100_LIKE.cu_count == 44
        assert W9100_LIKE.peak_dram_gb_per_sec == pytest.approx(320.0)

    def test_embedded_is_smallest_sweep_corner(self):
        assert EMBEDDED.cu_count == 4
        assert EMBEDDED.engine_mhz == 200.0
        assert EMBEDDED.memory_mhz == 150.0

    def test_products_ordered_by_capability(self):
        assert (
            EMBEDDED.peak_gflops
            < APU_LIKE.peak_gflops
            < W9100_LIKE.peak_gflops
        )

    def test_lookup_case_insensitive(self):
        assert product("W9100") is W9100_LIKE

    def test_lookup_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="apu"):
            product("gtx980")

    def test_registry_complete(self):
        assert set(PRODUCTS) == {"w9100", "midrange", "apu", "embedded"}


class TestSimulatorFacade:
    def test_default_engine_is_interval(self):
        assert GpuSimulator().engine is Engine.INTERVAL

    def test_engines_return_comparable_results(self):
        kernel = compute_kernel("c", global_size=1 << 16)
        interval = simulate(kernel, W9100_LIKE, Engine.INTERVAL)
        event = simulate(kernel, W9100_LIKE, Engine.EVENT)
        assert interval.time_s > 0 and event.time_s > 0
        # Same physics: within 3x of each other.
        ratio = interval.time_s / event.time_s
        assert 1 / 3 < ratio < 3

    def test_performance_and_time_consistent(self):
        kernel = compute_kernel("c")
        sim = GpuSimulator()
        assert sim.performance(kernel, W9100_LIKE) == pytest.approx(
            kernel.geometry.global_size / sim.time_s(kernel, W9100_LIKE)
        )
