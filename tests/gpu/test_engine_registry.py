"""The engine registry: registration semantics, negotiation, telemetry.

The registry is the seam every consumer resolves engines through, so
its contract is pinned directly: registration/duplicate/unregister
semantics, capability-based family negotiation in the facade,
descriptor-derived fingerprints, thread-safe call counters behind the
legacy counter shims, and the deprecated ``Engine``/``GridMode`` alias
enums.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu.engine import (
    Engine,
    EngineCapabilities,
    EngineDescriptor,
    GridMode,
    GridSpace,
    TimingEngine,
    engine_calls,
    engine_fingerprint,
    engine_names,
    engine_registration,
    find_family_engine,
    get_engine,
    list_engines,
    normalize_engine,
    normalize_grid_mode,
    record_engine_call,
    register_engine,
    reset_engine_calls,
    unregister_engine,
)
from repro.gpu.interval_batch import BatchIntervalModel
from repro.gpu.interval_model import IntervalModel
from repro.gpu.simulator import (
    GpuSimulator,
    engine_call_count,
    reset_engine_call_count,
)
from repro.sweep.space import PAPER_SPACE


class _NullEngine:
    supports_point = True
    supports_grid = False
    supports_study = False

    def descriptor(self):
        return EngineDescriptor(name="null", family="null")

    def simulate(self, kernel, config):
        raise NotImplementedError


@pytest.fixture
def scratch_engine():
    """A throwaway registration, cleaned up after the test."""
    name = "test-scratch"
    register_engine(
        name,
        _NullEngine,
        capabilities=EngineCapabilities(point=True),
        summary="scratch engine for registry tests",
    )
    yield name
    unregister_engine(name)


class TestRegistrySemantics:
    def test_builtins_are_registered(self):
        assert set(engine_names()) >= {
            "interval", "interval-batch", "event", "predictor", "faulty",
        }

    def test_get_engine_returns_fresh_instances(self):
        first = get_engine("interval")
        second = get_engine("interval")
        assert isinstance(first, IntervalModel)
        assert first is not second

    def test_builtin_instances_satisfy_protocol(self):
        for name in ("interval", "interval-batch", "event"):
            assert isinstance(get_engine(name), TimingEngine)

    def test_unknown_engine_is_structured_error(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            engine_registration("no-such-engine")
        with pytest.raises(ConfigurationError):
            GpuSimulator("no-such-engine")

    def test_duplicate_registration_rejected(self, scratch_engine):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine(
                scratch_engine,
                _NullEngine,
                capabilities=EngineCapabilities(point=True),
            )

    def test_replace_overrides_registration(self, scratch_engine):
        register_engine(
            scratch_engine,
            _NullEngine,
            capabilities=EngineCapabilities(point=True, grid=True),
            replace=True,
        )
        entry = engine_registration(scratch_engine)
        assert entry.capabilities.grid

    def test_unregister_removes_entry(self):
        register_engine(
            "test-transient",
            _NullEngine,
            capabilities=EngineCapabilities(point=True),
        )
        assert unregister_engine("test-transient")
        assert not unregister_engine("test-transient")
        assert "test-transient" not in engine_names()

    def test_list_engines_sorted_by_name(self):
        names = [entry.name for entry in list_engines()]
        assert names == sorted(names)

    def test_registered_engine_reachable_via_facade(self, scratch_engine):
        sim = GpuSimulator(scratch_engine)
        assert sim.engine_name == scratch_engine
        assert sim.engine == scratch_engine  # no legacy enum member
        assert sim.supports_point


class TestNormalization:
    def test_normalize_engine_spellings(self):
        assert normalize_engine("interval") == "interval"
        assert normalize_engine(Engine.INTERVAL) == "interval"
        assert normalize_engine(Engine.EVENT) == "event"
        assert normalize_engine(_NullEngine()) == "null"

    def test_normalize_grid_mode_spellings(self):
        assert normalize_grid_mode("batch") == "batch"
        assert normalize_grid_mode(GridMode.SCALAR) == "scalar"
        assert normalize_grid_mode(GridMode.STUDY) == "study"

    def test_unknown_grid_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown grid mode"):
            normalize_grid_mode("warp")


class TestDescriptorsAndFingerprints:
    def test_family_shares_fingerprint_material(self):
        assert engine_fingerprint("interval") == "interval"
        assert engine_fingerprint("interval-batch") == "interval"
        assert engine_fingerprint("event") == "event"

    def test_version_bump_moves_material(self):
        descriptor = EngineDescriptor(name="x", family="x", version=2)
        assert descriptor.fingerprint_material() == "x@v2"

    def test_facade_descriptor_matches_registry(self):
        sim = GpuSimulator("interval")
        assert sim.descriptor() is engine_registration(
            "interval"
        ).descriptor

    def test_engine_classes_return_registry_descriptors(self):
        assert get_engine("interval").descriptor().family == "interval"
        assert (
            get_engine("interval-batch").descriptor().family == "interval"
        )
        assert get_engine("event").descriptor().family == "event"


class TestFamilyNegotiation:
    def test_interval_grid_resolves_to_batch_sibling(self):
        sim = GpuSimulator("interval")
        assert isinstance(sim._grid, BatchIntervalModel)
        assert sim.supports_point and sim.supports_grid
        assert sim.supports_study

    def test_event_has_no_grid_sibling(self):
        assert find_family_engine("event", "grid") is None
        sim = GpuSimulator("event")
        assert sim._grid is None
        assert sim.supports_grid  # degraded point loop still serves grids
        assert not sim.supports_study

    def test_faulty_family_never_resolves_as_interval(self):
        # The wrapper injects corruption, so family negotiation for the
        # clean interval family must never pick it.
        sibling = find_family_engine("interval", "grid")
        assert sibling is not None
        assert sibling.name == "interval-batch"

    def test_grid_space_protocol_matches_configuration_space(self):
        assert isinstance(PAPER_SPACE, GridSpace)


class TestCallInstrumentation:
    def test_per_engine_and_total_counts(self):
        reset_engine_calls()
        record_engine_call("interval")
        record_engine_call("interval")
        record_engine_call("event")
        assert engine_calls("interval") == 2
        assert engine_calls("event") == 1
        assert engine_calls() == 3
        reset_engine_calls()
        assert engine_calls() == 0

    def test_unregistered_names_still_tallied(self):
        reset_engine_calls()
        record_engine_call("exotic-wrapper")
        assert engine_calls("exotic-wrapper") == 1
        assert engine_calls() == 1
        reset_engine_calls()

    def test_compat_shims_total_over_registry(self):
        reset_engine_call_count()
        assert engine_call_count() == 0
        record_engine_call("interval")
        assert engine_call_count() == 1
        reset_engine_call_count()
        assert engine_call_count() == 0

    def test_counter_is_thread_safe(self):
        reset_engine_calls()
        per_thread = 500
        threads = [
            threading.Thread(
                target=lambda: [
                    record_engine_call("interval")
                    for _ in range(per_thread)
                ]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert engine_calls("interval") == 8 * per_thread
        reset_engine_calls()

    def test_facade_calls_attributed_to_selected_engine(
        self, archetype_kernels, flagship
    ):
        reset_engine_calls()
        sim = GpuSimulator("interval")
        sim.simulate(archetype_kernels[0], flagship)
        assert engine_calls("interval") == 1
        assert engine_calls("event") == 0
        reset_engine_calls()


class TestDeprecatedAliases:
    def test_enum_values_are_registry_names(self):
        assert Engine.INTERVAL.value == "interval"
        assert Engine.EVENT.value == "event"
        assert [m.value for m in GridMode] == ["batch", "scalar", "study"]

    def test_enum_and_string_construction_equivalent(
        self, archetype_kernels, flagship
    ):
        kernel = archetype_kernels[0]
        via_enum = GpuSimulator(Engine.INTERVAL).simulate(kernel, flagship)
        via_name = GpuSimulator("interval").simulate(kernel, flagship)
        assert via_enum.time_s == via_name.time_s

    def test_grid_mode_spellings_equivalent(
        self, archetype_kernels, small_space
    ):
        kernel = archetype_kernels[0]
        sim = GpuSimulator("interval")
        via_enum = sim.simulate_grid(kernel, small_space, GridMode.SCALAR)
        via_name = sim.simulate_grid(kernel, small_space, "scalar")
        np.testing.assert_array_equal(via_enum.time_s, via_name.time_s)
