"""The microarchitecture-family registry and per-family physics.

Pins the PR 9 seam: families resolve by name, fingerprints derive from
physics values (never the name slug), and each built-in family's
batch-engine surface is bit-identical to the scalar oracle — the
bit-exactness invariant survives non-default physics.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu import GpuSimulator, IntervalModel
from repro.gpu.config import HAWAII_UARCH, Microarchitecture
from repro.gpu.interval_batch import BatchIntervalModel
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.uarch import (
    MAXWELL_UARCH,
    UarchFamily,
    family_for_uarch,
    family_label,
    family_names,
    family_registration,
    get_family,
    list_families,
    register_family,
    unregister_family,
)
from repro.kernels.archetypes import build_archetype
from repro.suites import kernel_by_name
from repro.sweep.space import ConfigurationSpace

RTOL = 1e-12

BUILTINS = ("fiji", "hawaii", "kaveri", "maxwell")


class TestRegistry:
    def test_builtins_registered(self):
        assert family_names() == BUILTINS

    def test_each_family_space_carries_its_uarch(self):
        for family in list_families():
            assert family.space.uarch == family.uarch
            assert family.flagship.uarch == family.uarch
            assert family.space.size >= 100

    def test_unknown_family_lists_known(self):
        with pytest.raises(ConfigurationError) as err:
            get_family("vega")
        message = str(err.value)
        assert "vega" in message
        for name in BUILTINS:
            assert name in message

    def test_register_duplicate_requires_replace(self):
        family = get_family("hawaii")
        with pytest.raises(ConfigurationError):
            register_family(family)
        register_family(family, replace=True)

    def test_temporary_registration_restores(self):
        hawaii = get_family("hawaii")
        stand_in = UarchFamily(
            name="testpart",
            uarch=hawaii.uarch,
            flagship=hawaii.flagship,
            space=hawaii.space,
        )
        with family_registration(stand_in):
            assert get_family("testpart") is stand_in
        assert "testpart" not in family_names()
        assert not unregister_family("testpart")

    def test_mismatched_space_uarch_rejected(self):
        hawaii = get_family("hawaii")
        kaveri = get_family("kaveri")
        with pytest.raises(ConfigurationError):
            UarchFamily(
                name="broken",
                uarch=hawaii.uarch,
                flagship=hawaii.flagship,
                space=kaveri.space,
            )

    def test_to_dict_is_json_ready(self):
        import json

        for family in list_families():
            payload = family.to_dict()
            assert json.loads(json.dumps(payload))["name"] == family.name


class TestFingerprints:
    def test_material_is_value_payload_without_name(self):
        for family in list_families():
            material = family.fingerprint_material()
            assert material == family.uarch.to_dict()
            assert "name" not in material

    def test_rename_keeps_fingerprint(self):
        maxwell = get_family("maxwell")
        renamed = dataclasses.replace(maxwell.uarch, name="gm200")
        assert renamed.to_dict() == maxwell.uarch.to_dict()
        assert renamed == maxwell.uarch

    def test_value_change_moves_fingerprint(self):
        maxwell = get_family("maxwell")
        tweaked = dataclasses.replace(maxwell.uarch, l2_banks=48)
        assert tweaked.to_dict() != maxwell.uarch.to_dict()


class TestFamilyLabel:
    def test_named_uarch_uses_its_slug(self):
        assert family_label(MAXWELL_UARCH) == "maxwell"

    def test_anonymous_values_resolve_through_registry(self):
        anonymous = Microarchitecture()
        assert anonymous.name == ""
        assert anonymous == HAWAII_UARCH
        assert family_for_uarch(anonymous).name == "hawaii"
        assert family_label(anonymous) == "hawaii"

    def test_unregistered_values_label_custom(self):
        bespoke = dataclasses.replace(
            Microarchitecture(), l2_banks=5, name=""
        )
        assert family_for_uarch(bespoke) is None
        assert family_label(bespoke) == "custom"


class TestFamilyPhysics:
    def test_simt_occupancy_differs_from_gcn(self):
        """32-wide warps double the wave count of the same kernel."""
        kernel = build_archetype("compute", program="physics")
        gcn = compute_occupancy(
            kernel.geometry, kernel.resources, HAWAII_UARCH
        )
        simt = compute_occupancy(
            kernel.geometry, kernel.resources, MAXWELL_UARCH
        )
        assert simt.wave_slot_cap == MAXWELL_UARCH.max_waves_per_cu
        assert gcn.wave_slot_cap == HAWAII_UARCH.max_waves_per_cu
        assert simt.waves_per_cu > gcn.waves_per_cu

    def test_vgpr_granule_rounds_allocation(self):
        """An 84-register wave pads to 84 on GCN but 88 on SM."""
        from repro.gpu.occupancy import waves_limited_by_vgprs

        # granule 4: ceil(84/4)*4 = 84; granule 8: ceil(84/8)*8 = 88
        assert waves_limited_by_vgprs(84, HAWAII_UARCH) == min(
            HAWAII_UARCH.max_waves_per_simd,
            HAWAII_UARCH.vgprs_per_simd // 84,
        )
        assert waves_limited_by_vgprs(84, MAXWELL_UARCH) == min(
            MAXWELL_UARCH.max_waves_per_simd,
            MAXWELL_UARCH.vgprs_per_simd // 88,
        )

    def test_simt_scalar_file_never_binds(self):
        from repro.gpu.occupancy import waves_limited_by_sgprs

        assert waves_limited_by_sgprs(100, MAXWELL_UARCH) == (
            MAXWELL_UARCH.max_waves_per_simd
        )
        assert waves_limited_by_sgprs(100, HAWAII_UARCH) < (
            HAWAII_UARCH.max_waves_per_simd
        )

    def test_hbm_bandwidth_dwarfs_gddr(self):
        fiji = get_family("fiji")
        hawaii = get_family("hawaii")
        assert fiji.flagship.peak_dram_gb_per_sec > (
            1.5 * hawaii.flagship.peak_dram_gb_per_sec
        )

    def test_host_contention_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            Microarchitecture(host_bandwidth_fraction=1.0)
        with pytest.raises(ConfigurationError):
            Microarchitecture(host_bandwidth_fraction=-0.1)


class TestBatchScalarBitExactness:
    """The oracle invariant on every non-default family."""

    @pytest.mark.parametrize("name", ["maxwell", "fiji", "kaveri"])
    @pytest.mark.parametrize(
        "kernel_name",
        ["rodinia/bfs.kernel1", "shoc/triad.triad"],
    )
    def test_family_grid_matches_scalar(self, name, kernel_name):
        family = get_family(name)
        space = ConfigurationSpace(
            cu_counts=family.space.cu_counts[:2],
            engine_mhz=family.space.engine_mhz[:2],
            memory_mhz=family.space.memory_mhz[:2],
            uarch=family.uarch,
        )
        kernel = kernel_by_name(kernel_name)
        batch = BatchIntervalModel().simulate_grid(kernel, space)
        scalar = IntervalModel()
        for c in range(2):
            for e in range(2):
                for m in range(2):
                    expected = scalar.simulate(
                        kernel, space.config(c, e, m)
                    ).time_s
                    assert batch.time_s[c, e, m] == expected

    def test_study_engine_matches_grid_on_family(self):
        family = get_family("maxwell")
        kernels = [
            build_archetype("compute", program="study-compute"),
            build_archetype("streaming", program="study-streaming"),
        ]
        from repro.kernels.pack import KernelPack

        study = BatchIntervalModel().simulate_study(
            KernelPack.from_kernels(kernels), family.space
        )
        for i, kernel in enumerate(kernels):
            grid = BatchIntervalModel().simulate_grid(
                kernel, family.space
            )
            np.testing.assert_array_equal(
                study.time_s[i], grid.time_s
            )

    def test_hawaii_results_unchanged_by_contention_hook(self):
        """f=0.0 multiplies by exactly 1.0: the paper's numbers hold."""
        from repro.gpu.products import W9100_LIKE

        assert W9100_LIKE.uarch.host_bandwidth_fraction == 0.0
        uarch = W9100_LIKE.uarch
        bytes_per_cycle = (
            uarch.memory_bus_bits / 8 * uarch.memory_data_rate
        )
        raw = bytes_per_cycle * W9100_LIKE.memory_hz
        assert W9100_LIKE.peak_dram_bytes_per_sec == raw


class TestSimulatorOnFamilies:
    def test_simulator_accepts_family_flagships(self):
        kernel = kernel_by_name("rodinia/bfs.kernel1")
        sim = GpuSimulator()
        times = {
            family.name: sim.simulate(kernel, family.flagship).time_s
            for family in list_families()
        }
        assert times["kaveri"] > times["hawaii"]
        assert all(t > 0 for t in times.values())
