"""Batch interval engine vs. the scalar reference oracle.

The batch engine must reproduce the scalar :class:`IntervalModel` to
``rtol=1e-12`` at every point of the full 891-configuration grid — the
scalar path stays the oracle, and this file is the property test that
pins the CU-axis hoisting invariant (see DESIGN.md, "Engine
architecture").
"""

import numpy as np
import pytest

from repro.gpu import GpuSimulator, GridMode, IntervalModel
from repro.gpu.families import APU_SPACE
from repro.gpu.interval_batch import BatchIntervalModel
from repro.kernels import (
    ARCHETYPE_BUILDERS,
    atomic_kernel,
    compute_kernel,
    latency_kernel,
    lds_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
)
from repro.suites import all_kernels, all_suites
from repro.sweep import PAPER_SPACE, reduced_space

RTOL = 1e-12

SUITE_NAMES = [suite.name for suite in all_suites()]


def scalar_grid(kernel, space):
    """Full-grid times via one scalar ``simulate`` call per point."""
    model = IntervalModel()
    n_cu, n_eng, n_mem = space.shape
    time_s = np.empty(space.shape)
    for c in range(n_cu):
        for e in range(n_eng):
            for m in range(n_mem):
                time_s[c, e, m] = model.simulate(
                    kernel, space.config(c, e, m)
                ).time_s
    return time_s


def assert_grids_match(kernel, space):
    batch = BatchIntervalModel().simulate_grid(kernel, space)
    expected = scalar_grid(kernel, space)
    np.testing.assert_allclose(batch.time_s, expected, rtol=RTOL)
    np.testing.assert_allclose(
        batch.items_per_second,
        kernel.geometry.global_size / expected,
        rtol=RTOL,
    )


class TestSuiteEquivalence:
    """One representative kernel per suite, full 891-point grid."""

    @pytest.mark.parametrize("suite", SUITE_NAMES)
    def test_full_grid_matches_scalar(self, suite):
        assert_grids_match(all_kernels(suite)[0], PAPER_SPACE)

    @pytest.mark.parametrize("suite", SUITE_NAMES)
    def test_last_kernel_reduced_grid(self, suite):
        assert_grids_match(all_kernels(suite)[-1], reduced_space(2, 2, 2))


class TestArchetypeEquivalence:
    """Every archetype (all model mechanisms), reduced grid."""

    @pytest.mark.parametrize("kind", sorted(ARCHETYPE_BUILDERS))
    def test_archetype_matches_scalar(self, kind):
        kernel = ARCHETYPE_BUILDERS[kind](f"{kind}_probe", suite="probe")
        assert_grids_match(kernel, reduced_space(2, 2, 2))


class TestEdgeCases:
    def test_zero_lds(self):
        kernel = compute_kernel("zlds", suite="edge")
        assert kernel.characteristics.lds_bytes_per_item == 0.0
        assert_grids_match(kernel, PAPER_SPACE)

    def test_nonzero_lds(self):
        assert_grids_match(lds_kernel("lds", suite="edge"), PAPER_SPACE)

    def test_zero_atomic(self):
        kernel = streaming_kernel("zat", suite="edge")
        assert kernel.characteristics.atomic_ops_per_item == 0.0
        assert_grids_match(kernel, PAPER_SPACE)

    def test_atomic_with_contention(self):
        assert_grids_match(atomic_kernel("at", suite="edge"), PAPER_SPACE)

    def test_zero_dependent_access_fraction(self):
        kernel = streaming_kernel(
            "nodep", suite="edge",
            dependent_access_fraction=0.0,
        )
        assert kernel.characteristics.dependent_access_fraction == 0.0
        assert_grids_match(kernel, PAPER_SPACE)

    def test_latency_bound_two_pass_refinement(self):
        assert_grids_match(latency_kernel("lat", suite="edge"), PAPER_SPACE)

    def test_single_workgroup_tail_quantisation(self):
        kernel = limited_parallelism_kernel(
            "one_wg", suite="edge", num_workgroups=1
        )
        assert kernel.geometry.num_workgroups == 1
        assert_grids_match(kernel, PAPER_SPACE)

    def test_prime_workgroup_count_tail(self):
        kernel = limited_parallelism_kernel(
            "tail", suite="edge", num_workgroups=97
        )
        assert_grids_match(kernel, PAPER_SPACE)


class TestAlternativeUarch:
    """The hoist must hold for non-default microarchitectures too."""

    @pytest.mark.parametrize("suite", ["rodinia", "shoc"])
    def test_apu_space_matches_scalar(self, suite):
        assert_grids_match(all_kernels(suite)[0], APU_SPACE)


class TestGridResultContents:
    def test_breakdown_matches_scalar_breakdown(self):
        kernel = all_kernels("rodinia")[3]
        space = reduced_space(4, 4, 4)
        batch = BatchIntervalModel().simulate_grid(kernel, space)
        model = IntervalModel()
        grids = batch.breakdown.as_dict()
        n_cu, n_eng, n_mem = space.shape
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    result = model.simulate(kernel, space.config(c, e, m))
                    for name, value in result.breakdown.as_dict().items():
                        assert grids[name][c, e, m] == pytest.approx(
                            value, rel=RTOL
                        )

    def test_bottleneck_matches_scalar(self):
        kernel = all_kernels("polybench")[0]
        space = reduced_space(4, 4, 4)
        batch = BatchIntervalModel().simulate_grid(kernel, space)
        model = IntervalModel()
        names = batch.breakdown.bottleneck
        n_cu, n_eng, n_mem = space.shape
        for c in range(n_cu):
            for e in range(n_eng):
                for m in range(n_mem):
                    result = model.simulate(kernel, space.config(c, e, m))
                    assert names[c, e, m] == result.breakdown.bottleneck

    def test_cu_axis_vectors(self):
        kernel = all_kernels("shoc")[0]
        batch = BatchIntervalModel().simulate_grid(kernel, PAPER_SPACE)
        assert batch.l2_hit_rate.shape == (11,)
        assert batch.dram_bytes.shape == (11,)
        assert batch.time_s.shape == PAPER_SPACE.shape
        assert batch.global_size == kernel.geometry.global_size
        assert batch.kernel_name == kernel.full_name

    def test_simulator_grid_modes_agree(self):
        kernel = all_kernels("parboil")[0]
        space = reduced_space(2, 2, 2)
        sim = GpuSimulator()
        batch = sim.simulate_grid(kernel, space)
        scalar = sim.simulate_grid(kernel, space, mode=GridMode.SCALAR)
        np.testing.assert_allclose(
            batch.time_s, scalar.time_s, rtol=RTOL
        )
        np.testing.assert_allclose(
            batch.breakdown.latency_s, scalar.breakdown.latency_s,
            rtol=RTOL,
        )
