"""DVFS domains: the paper's knob ranges and snapping helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import (
    CU_SETTINGS,
    ENGINE_DOMAIN,
    MEMORY_DOMAIN,
    FrequencyDomain,
    legal_cu_counts,
    snap_cu_count,
)


class TestPaperRanges:
    def test_engine_dynamic_range_is_5x(self):
        assert ENGINE_DOMAIN.dynamic_range == pytest.approx(5.0)

    def test_memory_dynamic_range_is_8_33x(self):
        assert MEMORY_DOMAIN.dynamic_range == pytest.approx(1250 / 150)

    def test_cu_range_is_11x(self):
        assert CU_SETTINGS[-1] / CU_SETTINGS[0] == pytest.approx(11.0)

    def test_grid_sizes_multiply_to_891(self):
        total = (
            len(CU_SETTINGS)
            * len(ENGINE_DOMAIN.states_mhz)
            * len(MEMORY_DOMAIN.states_mhz)
        )
        assert total == 891

    def test_cu_settings_step_4(self):
        assert list(CU_SETTINGS) == list(range(4, 45, 4))


class TestFrequencyDomain:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FrequencyDomain("x", ())

    def test_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            FrequencyDomain("x", (300.0, 200.0))

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            FrequencyDomain("x", (200.0, 200.0))

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            FrequencyDomain("x", (0.0, 200.0))

    def test_is_legal_exact_state(self):
        assert ENGINE_DOMAIN.is_legal(ENGINE_DOMAIN.states_mhz[3])
        assert not ENGINE_DOMAIN.is_legal(333.0)

    def test_snap_picks_nearest(self):
        domain = FrequencyDomain("x", (200.0, 400.0, 600.0))
        assert domain.snap(290.0) == 200.0
        assert domain.snap(310.0) == 400.0

    def test_snap_tie_resolves_downward(self):
        domain = FrequencyDomain("x", (200.0, 400.0))
        assert domain.snap(300.0) == 200.0

    def test_snap_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            ENGINE_DOMAIN.snap(0.0)

    def test_floor_below_minimum_returns_minimum(self):
        assert ENGINE_DOMAIN.floor(10.0) == ENGINE_DOMAIN.min_mhz

    def test_floor_returns_highest_not_above(self):
        domain = FrequencyDomain("x", (200.0, 400.0, 600.0))
        assert domain.floor(599.0) == 400.0
        assert domain.floor(600.0) == 600.0


class TestCuSnapping:
    def test_legal_counts_exposed(self):
        assert tuple(legal_cu_counts()) == CU_SETTINGS

    def test_snap_nearest(self):
        assert snap_cu_count(13) == 12
        assert snap_cu_count(15) == 16

    def test_snap_tie_resolves_downward(self):
        assert snap_cu_count(6) == 4

    def test_snap_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            snap_cu_count(0)
