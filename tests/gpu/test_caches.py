"""Cache model: residency-based L2 hits and the thrash mechanism."""

import pytest

from repro.gpu import HAWAII_UARCH, CacheModel
from repro.kernels import cache_resident_kernel, streaming_kernel, thrashing_kernel


@pytest.fixture
def model():
    return CacheModel(HAWAII_UARCH)


class TestL1:
    def test_l1_hit_rate_is_kernel_property(self, model):
        kernel = streaming_kernel("s", l1_reuse=0.25)
        assert model.l1_hit_rate(kernel) == 0.25

    def test_l1_independent_of_concurrency(self, model):
        kernel = streaming_kernel("s", l1_reuse=0.25)
        low = model.behaviour(kernel, 4, 4).l1_hit_rate
        high = model.behaviour(kernel, 44, 4).l1_hit_rate
        assert low == high


class TestConcurrentFootprint:
    def test_private_footprint_grows_with_cus(self, model):
        kernel = thrashing_kernel("t")
        low = model.concurrent_footprint_bytes(kernel, 4, 8)
        high = model.concurrent_footprint_bytes(kernel, 44, 8)
        assert high > low

    def test_shared_footprint_constant_in_cus(self, model):
        kernel = cache_resident_kernel("c")  # shared_footprint = 1.0
        low = model.concurrent_footprint_bytes(kernel, 4, 8)
        high = model.concurrent_footprint_bytes(kernel, 44, 8)
        assert high == pytest.approx(low)

    def test_footprint_caps_at_whole_grid(self, model):
        kernel = thrashing_kernel("t")
        total = kernel.characteristics.footprint_bytes
        huge = model.concurrent_footprint_bytes(kernel, 10_000, 100)
        assert huge <= total * 1.0001


class TestL2HitRate:
    def test_fitting_footprint_keeps_intrinsic_reuse(self, model):
        kernel = cache_resident_kernel("c", footprint_kib=512.0)
        behaviour = model.behaviour(kernel, 44, 8)
        assert behaviour.l2_hit_rate == pytest.approx(
            kernel.characteristics.l2_reuse
        )

    def test_hit_rate_falls_with_concurrency_for_private_sets(self, model):
        kernel = thrashing_kernel("t")
        low = model.l2_hit_rate(kernel, 4, 8)
        high = model.l2_hit_rate(kernel, 44, 8)
        assert high < low

    def test_hit_rate_never_exceeds_intrinsic_reuse(self, model):
        kernel = thrashing_kernel("t")
        for cus in (1, 4, 16, 44):
            assert model.l2_hit_rate(kernel, cus, 8) <= (
                kernel.characteristics.l2_reuse
            )

    def test_dram_fraction_complements_hits(self, model):
        kernel = streaming_kernel("s", l1_reuse=0.2)
        behaviour = model.behaviour(kernel, 16, 8)
        expected = (1 - behaviour.l1_hit_rate) * (1 - behaviour.l2_hit_rate)
        assert behaviour.dram_fraction == pytest.approx(expected)

    def test_fractions_partition_traffic(self, model):
        kernel = streaming_kernel("s", l1_reuse=0.2)
        behaviour = model.behaviour(kernel, 16, 8)
        total = (
            behaviour.l1_hit_rate
            + behaviour.l2_fraction
            + behaviour.dram_fraction
        )
        assert total == pytest.approx(1.0)


class TestValidation:
    def test_rejects_zero_cus(self, model):
        with pytest.raises(ValueError):
            model.behaviour(streaming_kernel("s"), 0, 8)

    def test_rejects_zero_workgroups(self, model):
        with pytest.raises(ValueError):
            model.behaviour(streaming_kernel("s"), 4, 0)
