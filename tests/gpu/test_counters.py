"""Profiler-style counter derivation."""


from repro.gpu import HardwareConfig, W9100_LIKE
from repro.gpu.counters import collect_counters
from repro.kernels import compute_kernel, streaming_kernel, tiny_kernel


class TestCounterValues:
    def test_compute_kernel_counters(self):
        report = collect_counters(compute_kernel("c"), W9100_LIKE)
        assert report.bottleneck == "compute"
        assert report.valu_busy_fraction > 0.5
        assert report.achieved_gflops > 1000.0
        assert report.achieved_gflops <= W9100_LIKE.peak_gflops * 1.01

    def test_streaming_kernel_counters(self):
        report = collect_counters(streaming_kernel("s"), W9100_LIKE)
        assert report.bottleneck == "dram"
        assert report.dram_utilisation > 0.5
        assert report.achieved_dram_gbps <= (
            W9100_LIKE.peak_dram_gb_per_sec * 1.01
        )

    def test_fractions_bounded(self):
        for builder in (compute_kernel, streaming_kernel, tiny_kernel):
            report = collect_counters(builder("k"), W9100_LIKE)
            assert 0.0 <= report.valu_busy_fraction <= 1.0
            assert 0.0 <= report.dram_utilisation <= 1.0
            assert 0.0 <= report.l2_hit_rate <= 1.0
            assert 0.0 < report.occupancy_fraction <= 1.0

    def test_config_identity_recorded(self):
        config = HardwareConfig(8, 600.0, 425.0)
        report = collect_counters(compute_kernel("c"), config)
        assert report.config_label == "8cu_600e_425m"
        assert report.active_cus <= 8

    def test_as_dict_complete(self):
        report = collect_counters(compute_kernel("c"), W9100_LIKE)
        payload = report.as_dict()
        assert payload["bottleneck"] == "compute"
        assert len(payload) == 14
