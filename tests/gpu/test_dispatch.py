"""Dispatch planning: limited parallelism and tail quantisation."""

import pytest

from repro.gpu import HAWAII_UARCH, compute_occupancy, plan_dispatch
from repro.kernels import LaunchGeometry, ResourceUsage


def make_plan(num_workgroups, cu_count, workgroup_size=256, vgprs=24):
    geometry = LaunchGeometry(num_workgroups * workgroup_size,
                              workgroup_size)
    occupancy = compute_occupancy(
        geometry, ResourceUsage(vgprs=vgprs), HAWAII_UARCH
    )
    return plan_dispatch(geometry, occupancy, cu_count)


class TestActiveCus:
    def test_small_launch_leaves_cus_idle(self):
        plan = make_plan(num_workgroups=8, cu_count=44)
        assert plan.active_cus == 8

    def test_large_launch_uses_every_cu(self):
        plan = make_plan(num_workgroups=4096, cu_count=44)
        assert plan.active_cus == 44

    def test_rejects_zero_cus(self):
        geometry = LaunchGeometry(1024, 256)
        occupancy = compute_occupancy(
            geometry, ResourceUsage(), HAWAII_UARCH
        )
        with pytest.raises(ValueError):
            plan_dispatch(geometry, occupancy, 0)


class TestQuantisation:
    def test_exact_fit_has_no_overhead(self):
        # 44 CUs x 10 resident workgroups = 440; 880 workgroups = 2 batches.
        plan = make_plan(num_workgroups=880, cu_count=44)
        resident = plan.resident_workgroups_total
        if 880 % resident == 0:
            assert plan.quantisation_factor == pytest.approx(1.0)

    def test_partial_batch_inflates(self):
        plan = make_plan(num_workgroups=45, cu_count=44, vgprs=256)
        # One workgroup per CU resident: 45 workgroups -> 2 batches on
        # 44 CUs, nearly half the second batch idle.
        assert plan.quantisation_factor > 1.5

    def test_underfilled_device_never_penalised(self):
        """A launch smaller than the device's residency must not be
        charged quantisation overhead (regression: q blew up to 2x)."""
        plan = make_plan(num_workgroups=32, cu_count=44)
        assert plan.quantisation_factor == pytest.approx(1.0)

    def test_factor_at_least_one(self):
        for wgs in (1, 7, 100, 1000, 4096):
            plan = make_plan(num_workgroups=wgs, cu_count=44)
            assert plan.quantisation_factor >= 1.0 - 1e-12

    def test_batches_cover_all_workgroups(self):
        plan = make_plan(num_workgroups=1000, cu_count=44)
        assert plan.batches * plan.resident_workgroups_total >= 1000
