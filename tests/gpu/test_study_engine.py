"""Whole-study kernel-axis batching vs. the per-kernel oracles.

``GridMode.STUDY`` evaluates the entire catalog in one
``(kernel, cu, eng, mem)`` broadcast. Its contract is strict: slicing
the study tensor at any kernel must be *bitwise identical* to the
per-kernel batch path, and within ``rtol=1e-12`` of the scalar
reference oracle — the same invariant chain the batch engine pins
against the scalar model in ``test_interval_batch.py``, extended one
axis. This file also pins the per-microarchitecture state hoist: cache
and memory derived state is built once per uarch, never per call.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.gpu import Engine, GpuSimulator, GridMode
from repro.gpu.families import APU_SPACE
from repro.gpu.interval_batch import BatchIntervalModel
import repro.gpu.interval_batch as interval_batch
from repro.gpu.caches import CacheModel
from repro.kernels import ARCHETYPE_BUILDERS, KernelPack
from repro.suites import all_kernels, all_suites
from repro.sweep import (
    FaultKind,
    FaultSpec,
    FaultyEngine,
    PAPER_SPACE,
    SweepRunner,
    reduced_space,
)
from repro.sweep.space import ConfigurationSpace

RTOL = 1e-12


def batch_rows(kernels, space):
    """Per-kernel batch grids, stacked along the kernel axis."""
    model = BatchIntervalModel()
    return np.stack(
        [model.simulate_grid(k, space).time_s for k in kernels]
    )


class TestStudyVsBatchBitExact:
    """The study path must reproduce the batch path to the last bit."""

    def test_full_catalog_reduced_space(self):
        kernels = all_kernels()
        space = reduced_space(2, 2, 2)
        study = GpuSimulator().simulate_study(kernels, space)
        np.testing.assert_array_equal(
            study.time_s, batch_rows(kernels, space)
        )

    def test_full_catalog_paper_space(self):
        kernels = all_kernels()
        study = GpuSimulator().simulate_study(kernels, PAPER_SPACE)
        np.testing.assert_array_equal(
            study.time_s, batch_rows(kernels, PAPER_SPACE)
        )

    @pytest.mark.parametrize(
        "suite", [suite.name for suite in all_suites()]
    )
    def test_each_suite_paper_space(self, suite):
        kernels = all_kernels(suite)
        study = GpuSimulator().simulate_study(kernels, PAPER_SPACE)
        np.testing.assert_array_equal(
            study.time_s, batch_rows(kernels, PAPER_SPACE)
        )


class TestStudyVsScalarOracle:
    """And stay within the batch engine's tolerance of the scalar."""

    def test_full_catalog_vs_scalar(self):
        kernels = all_kernels()
        space = reduced_space(4, 4, 4)
        study = GpuSimulator().simulate_study(kernels, space)
        sim = GpuSimulator()
        for i, kernel in enumerate(kernels):
            scalar = sim.simulate_grid(
                kernel, space, mode=GridMode.SCALAR
            )
            np.testing.assert_allclose(
                study.time_s[i], scalar.time_s, rtol=RTOL
            )

    @pytest.mark.parametrize("kind", sorted(ARCHETYPE_BUILDERS))
    @pytest.mark.parametrize(
        "space",
        [reduced_space(2, 2, 2), APU_SPACE],
        ids=["hawaii", "kaveri-apu"],
    )
    def test_every_archetype_every_uarch_family(self, kind, space):
        kernel = ARCHETYPE_BUILDERS[kind](f"{kind}_probe", suite="probe")
        study = GpuSimulator().simulate_study([kernel], space)
        scalar = GpuSimulator().simulate_grid(
            kernel, space, mode=GridMode.SCALAR
        )
        np.testing.assert_allclose(
            study.time_s[0], scalar.time_s, rtol=RTOL
        )


class TestStudyResultContents:
    def test_shapes_and_names(self):
        kernels = all_kernels("rodinia")
        space = reduced_space(2, 2, 2)
        study = GpuSimulator().simulate_study(kernels, space)
        n = len(kernels)
        assert len(study) == n
        assert study.kernel_names == tuple(k.full_name for k in kernels)
        assert study.time_s.shape == (n,) + space.shape
        assert study.items_per_second.shape == (n,) + space.shape
        assert study.l2_hit_rate.shape == (n, space.shape[0])
        assert study.dram_bytes.shape == (n, space.shape[0])
        np.testing.assert_array_equal(
            study.global_size,
            [k.geometry.global_size for k in kernels],
        )

    def test_perf_row_matches_batch_grid(self):
        kernels = all_kernels("polybench")
        space = reduced_space(2, 2, 2)
        study = GpuSimulator().simulate_study(kernels, space)
        model = BatchIntervalModel()
        for i, kernel in enumerate(kernels):
            grid = model.simulate_grid(kernel, space)
            np.testing.assert_array_equal(
                study.perf_row(i), grid.items_per_second
            )

    def test_cu_axis_vectors_match_batch(self):
        kernels = all_kernels("parboil")
        space = reduced_space(2, 2, 2)
        study = GpuSimulator().simulate_study(kernels, space)
        model = BatchIntervalModel()
        for i, kernel in enumerate(kernels):
            grid = model.simulate_grid(kernel, space)
            np.testing.assert_array_equal(
                study.l2_hit_rate[i], grid.l2_hit_rate
            )
            np.testing.assert_array_equal(
                study.dram_bytes[i], grid.dram_bytes
            )

    def test_occupancy_matches_batch(self):
        kernels = all_kernels("opendwarfs")
        space = reduced_space(2, 2, 2)
        study = GpuSimulator().simulate_study(kernels, space)
        model = BatchIntervalModel()
        for i, kernel in enumerate(kernels):
            grid = model.simulate_grid(kernel, space)
            scalar_occ = study.occupancy.result(i)
            assert scalar_occ == grid.occupancy

    def test_accepts_prepacked_kernels(self):
        kernels = all_kernels("proxyapps")
        space = reduced_space(4, 4, 4)
        sim = GpuSimulator()
        from_list = sim.simulate_study(kernels, space)
        from_pack = sim.simulate_study(
            KernelPack.from_kernels(kernels), space
        )
        np.testing.assert_array_equal(
            from_list.time_s, from_pack.time_s
        )

    def test_event_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            GpuSimulator(Engine.EVENT).simulate_study(
                all_kernels("proxyapps"), reduced_space(4, 4, 4)
            )


class TestSweepRunnerStudyMode:
    def test_dataset_identical_to_batch_mode(self):
        kernels = all_kernels()
        space = reduced_space(2, 2, 2)
        batch = SweepRunner(grid_mode=GridMode.BATCH).run(kernels, space)
        study = SweepRunner(grid_mode=GridMode.STUDY).run(kernels, space)
        np.testing.assert_array_equal(batch.perf, study.perf)
        assert batch.kernel_names == study.kernel_names
        assert study.quarantined == {}

    def test_progress_ticks_per_kernel_row(self):
        kernels = all_kernels("proxyapps")
        calls = []
        SweepRunner(grid_mode=GridMode.STUDY).run(
            kernels, reduced_space(4, 4, 4),
            progress=lambda d, t: calls.append((d, t)),
        )
        assert calls == [
            (i + 1, len(kernels)) for i in range(len(kernels))
        ]

    def test_fault_engine_falls_back_with_quarantine(self):
        """A simulator without ``simulate_study`` (the fault-injection
        wrapper) must transparently use the per-kernel loop, keeping
        full quarantine attribution."""
        kernels = all_kernels("proxyapps")
        space = reduced_space(4, 4, 4)
        target = kernels[3].full_name
        faulty = FaultyEngine(
            GpuSimulator(),
            [FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                       message="study fallback boom")],
        )
        runner = SweepRunner(
            grid_mode=GridMode.STUDY, simulator=faulty
        )
        dataset = runner.run(kernels, space, strict=False)
        assert dataset.quarantined == {target: "study fallback boom"}
        assert np.isnan(dataset.perf[3]).all()
        clean = SweepRunner(grid_mode=GridMode.STUDY).run(kernels, space)
        healthy = dataset.healthy()
        np.testing.assert_array_equal(
            healthy.perf, clean.subset(healthy.kernel_names).perf
        )

    def test_fault_engine_strict_raises_named_error(self):
        kernels = all_kernels("proxyapps")
        target = kernels[3].full_name
        faulty = FaultyEngine(
            GpuSimulator(),
            [FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                       message="strict boom")],
        )
        runner = SweepRunner(
            grid_mode=GridMode.STUDY, simulator=faulty
        )
        with pytest.raises(SimulationError) as excinfo:
            runner.run(kernels, reduced_space(4, 4, 4), strict=True)
        assert excinfo.value.kernel_name == target


class TestUarchStateHoisting:
    """Derived cache/memory state is built once per uarch, not per call
    — the chunked-campaign fix: equal-but-distinct uarch instances
    (e.g. deserialised per chunk) must share one state entry."""

    def test_cache_model_built_once_across_study_calls(self, monkeypatch):
        constructions = []

        class CountingCacheModel(CacheModel):
            def __init__(self, uarch):
                constructions.append(uarch)
                super().__init__(uarch)

        monkeypatch.setattr(
            interval_batch, "CacheModel", CountingCacheModel
        )
        model = BatchIntervalModel()
        kernels = all_kernels("proxyapps")
        pack = KernelPack.from_kernels(kernels)
        space = reduced_space(4, 4, 4)
        for _ in range(3):
            model.simulate_study(pack, space)
            model.simulate_grid(kernels[0], space)
        assert len(constructions) == 1

    def test_equal_uarch_instances_share_state(self):
        space = reduced_space(4, 4, 4)
        rehydrated = ConfigurationSpace.from_dict(space.to_dict())
        assert rehydrated.uarch is not space.uarch
        assert rehydrated.uarch == space.uarch
        model = BatchIntervalModel()
        assert model._state(space.uarch) is model._state(rehydrated.uarch)

    def test_distinct_uarches_get_distinct_state(self):
        model = BatchIntervalModel()
        hawaii = model._state(PAPER_SPACE.uarch)
        apu = model._state(APU_SPACE.uarch)
        assert hawaii is not apu
