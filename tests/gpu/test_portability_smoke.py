"""Tier-1 smoke of the taxonomy-portability claim (satellite of PR 9).

``benchmarks/test_extension_portability.py`` runs the full portability
experiment under the benchmark harness; this is its fast tier-1
promotion — the whole catalog swept on the discrete and APU canonical
grids with the study engine (fractions of a second), checking the same
three shape claims: a substantial stable core, systematic migration
toward bandwidth-bound on the bandwidth-starved APU, and the collapse
of the contention class on the small device.
"""

from collections import Counter

from repro.analysis.transfer import family_taxonomy
from repro.taxonomy.categories import TaxonomyCategory


def test_apu_portability_shape():
    discrete = family_taxonomy("hawaii")
    apu = family_taxonomy("kaveri")

    pairs = Counter(
        (d.category, a.category)
        for d, a in zip(discrete.labels, apu.labels)
    )
    total = len(discrete.labels)
    assert total == 267

    stable = sum(n for (d, a), n in pairs.items() if d is a)
    assert stable / total >= 0.45

    to_bandwidth = sum(
        n for (d, a), n in pairs.items()
        if a is TaxonomyCategory.BANDWIDTH_BOUND
        and d is not TaxonomyCategory.BANDWIDTH_BOUND
    )
    from_bandwidth = sum(
        n for (d, a), n in pairs.items()
        if d is TaxonomyCategory.BANDWIDTH_BOUND
        and a is not TaxonomyCategory.BANDWIDTH_BOUND
    )
    assert to_bandwidth > from_bandwidth

    assert apu.category_counts()[TaxonomyCategory.CU_INVERSE] < (
        discrete.category_counts()[TaxonomyCategory.CU_INVERSE]
    )
