"""GCN occupancy calculator: resource limits and granularity rules."""

import pytest

from repro.errors import WorkloadError
from repro.gpu import HAWAII_UARCH, compute_occupancy
from repro.gpu.occupancy import (
    waves_limited_by_sgprs,
    waves_limited_by_vgprs,
    workgroups_limited_by_lds,
)
from repro.kernels import LaunchGeometry, ResourceUsage


class TestVgprLimit:
    def test_light_usage_hits_architectural_cap(self):
        assert waves_limited_by_vgprs(24, HAWAII_UARCH) == 10

    def test_vgpr_limit_kicks_in(self):
        # 256 / 64 = 4 waves per SIMD.
        assert waves_limited_by_vgprs(64, HAWAII_UARCH) == 4

    def test_maximum_vgprs_allow_one_wave(self):
        assert waves_limited_by_vgprs(256, HAWAII_UARCH) == 1

    def test_allocation_granularity_rounds_up(self):
        # 65 VGPRs allocate as 68 -> 256//68 = 3 waves.
        assert waves_limited_by_vgprs(65, HAWAII_UARCH) == 3


class TestSgprLimit:
    def test_light_usage_hits_cap(self):
        assert waves_limited_by_sgprs(16, HAWAII_UARCH) == 10

    def test_heavy_usage_limits(self):
        # 96 SGPRs -> 512 // 96 (rounded to 96) = 5 waves.
        assert waves_limited_by_sgprs(96, HAWAII_UARCH) == 5


class TestLdsLimit:
    def test_zero_lds_gives_workgroup_cap(self):
        assert workgroups_limited_by_lds(0, HAWAII_UARCH) == 16

    def test_half_lds_allows_two_workgroups(self):
        assert workgroups_limited_by_lds(32 * 1024, HAWAII_UARCH) == 2

    def test_oversized_lds_rejected(self):
        with pytest.raises(WorkloadError):
            workgroups_limited_by_lds(65 * 1024, HAWAII_UARCH)


class TestCombined:
    def test_unconstrained_kernel_reaches_40_waves(self):
        result = compute_occupancy(
            LaunchGeometry(1 << 20, 256),
            ResourceUsage(vgprs=24, sgprs=16),
            HAWAII_UARCH,
        )
        assert result.waves_per_cu == 40
        assert result.occupancy_fraction == pytest.approx(1.0)

    def test_vgpr_bound_kernel(self):
        result = compute_occupancy(
            LaunchGeometry(1 << 20, 256),
            ResourceUsage(vgprs=128, sgprs=16),
            HAWAII_UARCH,
        )
        # 2 waves/SIMD -> 8 waves -> 2 workgroups of 4 waves each.
        assert result.limiter == "vgpr"
        assert result.waves_per_cu == 8
        assert result.workgroups_per_cu == 2

    def test_lds_bound_kernel(self):
        result = compute_occupancy(
            LaunchGeometry(1 << 20, 256),
            ResourceUsage(vgprs=24, lds_bytes_per_workgroup=32 * 1024),
            HAWAII_UARCH,
        )
        assert result.limiter == "lds"
        assert result.workgroups_per_cu == 2
        assert result.waves_per_cu == 8

    def test_workgroup_granularity_rounds_down(self):
        # 3-wave workgroups against the 40-slot cap: 13 waves of slack
        # do not fit a 14th workgroup-wave, so 13 workgroups resident.
        result = compute_occupancy(
            LaunchGeometry(1 << 20, 192),
            ResourceUsage(vgprs=24, sgprs=16),
            HAWAII_UARCH,
        )
        assert result.waves_per_cu == 39
        assert result.workgroups_per_cu == 13

    def test_small_workgroups_hit_workgroup_slot_cap(self):
        result = compute_occupancy(
            LaunchGeometry(1 << 20, 64),
            ResourceUsage(vgprs=24, sgprs=16),
            HAWAII_UARCH,
        )
        assert result.limiter == "workgroup_slots"
        assert result.workgroups_per_cu == 16
        assert result.waves_per_cu == 16

    def test_at_least_one_workgroup_always_resident(self):
        result = compute_occupancy(
            LaunchGeometry(1024, 1024),
            ResourceUsage(vgprs=256, sgprs=96),
            HAWAII_UARCH,
        )
        assert result.workgroups_per_cu == 1
