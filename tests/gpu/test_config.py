"""HardwareConfig: validation, derived peaks, serialisation."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu import HAWAII_UARCH, HardwareConfig, Microarchitecture


class TestValidation:
    def test_rejects_zero_cus(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(cu_count=0, engine_mhz=1000, memory_mhz=1250)

    def test_rejects_negative_engine_clock(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(cu_count=44, engine_mhz=-1, memory_mhz=1250)

    def test_rejects_zero_memory_clock(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(cu_count=44, engine_mhz=1000, memory_mhz=0)

    def test_uarch_rejects_zero_simds(self):
        with pytest.raises(ConfigurationError):
            Microarchitecture(simds_per_cu=0)

    def test_uarch_rejects_negative_fixed_latency(self):
        with pytest.raises(ConfigurationError):
            Microarchitecture(dram_fixed_latency_ns=-1.0)


class TestDerivedPeaks:
    def test_w9100_datasheet_bandwidth(self):
        """512-bit GDDR5 at 1250 MHz is the W9100's 320 GB/s."""
        config = HardwareConfig(44, 1000.0, 1250.0)
        assert config.peak_dram_gb_per_sec == pytest.approx(320.0)

    def test_w9100_datasheet_gflops(self):
        """44 CUs x 64 lanes x 2 FLOP x 1 GHz = 5.632 TFLOP/s."""
        config = HardwareConfig(44, 1000.0, 1250.0)
        assert config.peak_gflops == pytest.approx(5632.0)

    def test_peak_compute_scales_with_cus(self):
        small = HardwareConfig(4, 1000.0, 1250.0)
        large = HardwareConfig(44, 1000.0, 1250.0)
        assert large.peak_gflops / small.peak_gflops == pytest.approx(11.0)

    def test_peak_compute_scales_with_engine_clock(self):
        slow = HardwareConfig(44, 200.0, 1250.0)
        fast = HardwareConfig(44, 1000.0, 1250.0)
        assert fast.peak_gflops / slow.peak_gflops == pytest.approx(5.0)

    def test_peak_bandwidth_scales_with_memory_clock(self):
        slow = HardwareConfig(44, 1000.0, 150.0)
        fast = HardwareConfig(44, 1000.0, 1250.0)
        ratio = fast.peak_dram_bytes_per_sec / slow.peak_dram_bytes_per_sec
        assert ratio == pytest.approx(1250.0 / 150.0)

    def test_bandwidth_independent_of_cus(self):
        small = HardwareConfig(4, 1000.0, 1250.0)
        large = HardwareConfig(44, 1000.0, 1250.0)
        assert small.peak_dram_bytes_per_sec == pytest.approx(
            large.peak_dram_bytes_per_sec
        )

    def test_l2_bandwidth_in_engine_domain(self):
        slow = HardwareConfig(44, 500.0, 1250.0)
        fast = HardwareConfig(44, 1000.0, 1250.0)
        assert fast.peak_l2_bytes_per_sec == pytest.approx(
            2.0 * slow.peak_l2_bytes_per_sec
        )

    def test_machine_balance_positive(self):
        config = HardwareConfig(44, 1000.0, 1250.0)
        assert config.machine_balance_flops_per_byte > 1.0

    def test_lanes_per_cu_is_64(self):
        assert HAWAII_UARCH.lanes_per_cu == 64

    def test_max_waves_per_cu_is_40(self):
        assert HAWAII_UARCH.max_waves_per_cu == 40


class TestConvenience:
    def test_label_format(self):
        config = HardwareConfig(8, 600.0, 425.0)
        assert config.label() == "8cu_600e_425m"

    def test_replace_changes_one_knob(self):
        config = HardwareConfig(8, 600.0, 425.0)
        bigger = config.replace(cu_count=44)
        assert bigger.cu_count == 44
        assert bigger.engine_mhz == 600.0

    def test_replace_validates(self):
        config = HardwareConfig(8, 600.0, 425.0)
        with pytest.raises(ConfigurationError):
            config.replace(cu_count=0)

    def test_round_trip_dict(self):
        config = HardwareConfig(8, 600.0, 425.0)
        restored = HardwareConfig.from_dict(config.to_dict())
        assert restored == config
