"""Interval model: bottleneck identification and scaling physics."""

import pytest

from repro.gpu import HardwareConfig, IntervalModel
from repro.kernels import (
    atomic_kernel,
    compute_kernel,
    latency_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    thrashing_kernel,
    tiny_kernel,
)

MODEL = IntervalModel()
MAX = HardwareConfig(44, 1000.0, 1250.0)
MIN = HardwareConfig(4, 200.0, 150.0)


def perf(kernel, config):
    return MODEL.simulate(kernel, config).items_per_second


class TestBasicSanity:
    def test_time_positive(self):
        result = MODEL.simulate(compute_kernel("c"), MAX)
        assert result.time_s > 0

    def test_breakdown_components_non_negative(self):
        result = MODEL.simulate(streaming_kernel("s"), MAX)
        for name, value in result.breakdown.as_dict().items():
            assert value >= 0, name

    def test_total_time_at_least_launch_overhead(self):
        kernel = compute_kernel("c")
        result = MODEL.simulate(kernel, MAX)
        assert result.time_s >= (
            kernel.characteristics.launch_overhead_us * 1e-6
        )

    def test_max_config_faster_than_min(self):
        for builder in (compute_kernel, streaming_kernel):
            kernel = builder("k")
            assert perf(kernel, MAX) > perf(kernel, MIN)


class TestBottlenecks:
    def test_compute_kernel_is_compute_bound(self):
        result = MODEL.simulate(compute_kernel("c"), MAX)
        assert result.breakdown.bottleneck == "compute"

    def test_streaming_kernel_is_dram_bound_at_max(self):
        result = MODEL.simulate(streaming_kernel("s"), MAX)
        assert result.breakdown.bottleneck == "dram"

    def test_latency_kernel_is_latency_bound(self):
        result = MODEL.simulate(latency_kernel("l"), MAX)
        assert result.breakdown.bottleneck == "latency"


class TestScalingDirections:
    def test_compute_kernel_scales_with_cus(self):
        kernel = compute_kernel("c")
        p4 = perf(kernel, HardwareConfig(4, 1000, 1250))
        p44 = perf(kernel, MAX)
        assert p44 / p4 > 8.0

    def test_compute_kernel_flat_in_memory_clock(self):
        kernel = compute_kernel("c")
        slow = perf(kernel, HardwareConfig(44, 1000, 150))
        fast = perf(kernel, MAX)
        assert fast / slow < 1.2

    def test_streaming_kernel_scales_with_memory_clock(self):
        kernel = streaming_kernel("s")
        slow = perf(kernel, HardwareConfig(44, 1000, 150))
        fast = perf(kernel, MAX)
        assert fast / slow > 5.0

    def test_limited_parallelism_flat_beyond_launch_size(self):
        kernel = limited_parallelism_kernel("p", num_workgroups=8)
        p8 = perf(kernel, HardwareConfig(8, 1000, 1250))
        p44 = perf(kernel, MAX)
        assert p44 / p8 < 1.05

    def test_thrashing_kernel_loses_performance_at_scale(self):
        kernel = thrashing_kernel("t")
        best = max(
            perf(kernel, HardwareConfig(c, 1000, 1250))
            for c in range(4, 45, 4)
        )
        at_44 = perf(kernel, MAX)
        assert at_44 < 0.9 * best

    def test_atomic_kernel_slows_with_concurrency_growth(self):
        kernel = atomic_kernel("a", contention=0.5)
        low = MODEL.simulate(kernel, HardwareConfig(4, 1000, 1250))
        high = MODEL.simulate(kernel, MAX)
        assert high.breakdown.atomic_s > low.breakdown.atomic_s

    def test_tiny_kernel_dominated_by_launch_overhead(self):
        kernel = tiny_kernel("t")
        result = MODEL.simulate(kernel, MAX)
        assert result.breakdown.launch_s > 0.5 * result.time_s

    def test_latency_kernel_plateaus_at_high_clocks(self):
        kernel = latency_kernel("l")
        mid = perf(kernel, HardwareConfig(44, 800, 975))
        top = perf(kernel, MAX)
        assert top / mid < 1.3


class TestCacheClockDomain:
    def test_cache_resident_traffic_scales_with_engine_not_memory(self):
        from repro.kernels import cache_resident_kernel

        kernel = cache_resident_kernel("cr")
        mem_gain = perf(kernel, MAX) / perf(
            kernel, HardwareConfig(44, 1000, 150)
        )
        eng_gain = perf(kernel, MAX) / perf(
            kernel, HardwareConfig(44, 200, 1250)
        )
        assert eng_gain > 3.0
        assert mem_gain < 1.3


class TestResultMetadata:
    def test_result_records_dispatch_and_occupancy(self):
        kernel = compute_kernel("c")
        result = MODEL.simulate(kernel, MAX)
        assert result.dispatch.active_cus == 44
        assert result.occupancy.waves_per_cu > 0
        assert result.global_size == kernel.geometry.global_size

    def test_items_per_second_consistent(self):
        kernel = compute_kernel("c")
        result = MODEL.simulate(kernel, MAX)
        assert result.items_per_second == pytest.approx(
            result.global_size / result.time_s
        )
