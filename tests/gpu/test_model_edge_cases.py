"""Interval-model edge cases: degenerate but legal kernels."""

import math


from repro.gpu import HardwareConfig, IntervalModel
from repro.kernels import Kernel, KernelCharacteristics, LaunchGeometry

MODEL = IntervalModel()
MAX = HardwareConfig(44, 1000.0, 1250.0)


def kernel_with(geometry=None, **characteristics):
    defaults = {
        "valu_ops_per_item": 10.0,
        "global_load_bytes_per_item": 8.0,
    }
    defaults.update(characteristics)
    return Kernel(
        program="edge",
        name="k",
        suite="t",
        characteristics=KernelCharacteristics(**defaults),
        geometry=geometry or LaunchGeometry(1 << 16, 256),
    )


class TestZeroTraffic:
    def test_pure_compute_kernel_no_memory_intervals(self):
        kernel = kernel_with(global_load_bytes_per_item=0.0)
        result = MODEL.simulate(kernel, MAX)
        assert result.breakdown.dram_s == 0.0
        assert result.breakdown.l2_s == 0.0
        assert result.dram_bytes == 0.0
        assert result.breakdown.bottleneck == "compute"

    def test_store_only_kernel(self):
        kernel = kernel_with(
            global_load_bytes_per_item=0.0,
            global_store_bytes_per_item=32.0,
            l1_reuse=0.0,
            l2_reuse=0.0,
        )
        result = MODEL.simulate(kernel, MAX)
        assert result.dram_bytes > 0


class TestExtremeGeometry:
    def test_single_item_launch(self):
        kernel = kernel_with(geometry=LaunchGeometry(1, 1))
        result = MODEL.simulate(kernel, MAX)
        assert math.isfinite(result.time_s) and result.time_s > 0
        assert result.dispatch.active_cus == 1

    def test_single_cu_device(self):
        kernel = kernel_with()
        result = MODEL.simulate(kernel, HardwareConfig(1, 200.0, 150.0))
        assert result.dispatch.active_cus == 1
        assert result.time_s > 0

    def test_one_item_workgroups(self):
        kernel = kernel_with(geometry=LaunchGeometry(4096, 1))
        result = MODEL.simulate(kernel, MAX)
        assert result.time_s > 0

    def test_max_width_workgroups(self):
        kernel = kernel_with(geometry=LaunchGeometry(1 << 16, 1024))
        result = MODEL.simulate(kernel, MAX)
        assert result.occupancy.waves_per_cu >= 16


class TestExtremeBehaviours:
    def test_fully_dependent_single_wave_kernel(self):
        kernel = kernel_with(
            dependent_access_fraction=1.0,
            memory_parallelism=1.0,
            geometry=LaunchGeometry(64, 64),
        )
        result = MODEL.simulate(kernel, MAX)
        assert result.breakdown.latency_s > 0

    def test_zero_launch_overhead_allowed(self):
        kernel = kernel_with(launch_overhead_us=0.0)
        result = MODEL.simulate(kernel, MAX)
        assert result.breakdown.launch_s == 0.0

    def test_full_contention_single_address_atomics(self):
        kernel = kernel_with(
            atomic_ops_per_item=1.0, atomic_contention=1.0
        )
        result = MODEL.simulate(kernel, MAX)
        # Every atomic serialises: the serial term dominates runtime.
        assert result.breakdown.atomic_s > 0.5 * result.time_s

    def test_extreme_divergence_costs_lanes(self):
        # A compute-dominated kernel so the divergence penalty is not
        # hidden behind memory or launch-overhead intervals.
        efficient = kernel_with(
            valu_ops_per_item=2000.0, simd_efficiency=1.0,
            geometry=LaunchGeometry(1 << 20, 256),
        )
        divergent = kernel_with(
            valu_ops_per_item=2000.0, simd_efficiency=1.0 / 64.0,
            geometry=LaunchGeometry(1 << 20, 256),
        )
        t_eff = MODEL.simulate(efficient, MAX).time_s
        t_div = MODEL.simulate(divergent, MAX).time_s
        assert t_div > 10.0 * t_eff
