"""The multi-core study engine vs. the single-core study oracle.

``study-mt`` shards the 4-D study lattice along the kernel axis across
a process pool; its contract is the kernel-axis tiling invariant —
every per-kernel quantity in the batch model is elementwise over the
kernel row, so tiling must commute *bitwise* with whole-study
evaluation. This file pins that invariant at pool sizes 1, 2, and N
over every suite and both microarchitecture families, plus the
supervision behaviour around it: determinism across pool recreation,
serial fallback on mid-study worker death, per-pool-lifetime worker
state memoization, and the memoized pack cache the engines share.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.gpu import GpuSimulator, GridMode
from repro.gpu.engine import INTERVAL_BATCH_DESCRIPTOR
from repro.gpu.families import APU_SPACE
from repro.gpu.interval_batch import BatchIntervalModel
from repro.gpu.study_mt import StudyMTModel
import repro.kernels.pack as pack_module
from repro.kernels.pack import (
    KernelPack,
    catalog_fingerprint,
    clear_pack_cache,
    memoized_pack,
)
from repro.suites import all_kernels, all_suites
from repro.sweep import (
    FaultKind,
    FaultSpec,
    FaultyEngine,
    PAPER_SPACE,
    SweepRunner,
    reduced_space,
)

RTOL = 1e-12


def oracle_study(kernels, space):
    """The single-core study result the tiled engine must reproduce."""
    return BatchIntervalModel().simulate_study(
        KernelPack.from_kernels(list(kernels)), space
    )


def assert_study_bit_exact(actual, expected):
    """Every field of the study result, compared to the last bit."""
    assert actual.kernel_names == expected.kernel_names
    np.testing.assert_array_equal(actual.time_s, expected.time_s)
    np.testing.assert_array_equal(
        actual.items_per_second, expected.items_per_second
    )
    np.testing.assert_array_equal(
        actual.l2_hit_rate, expected.l2_hit_rate
    )
    np.testing.assert_array_equal(actual.dram_bytes, expected.dram_bytes)
    np.testing.assert_array_equal(
        actual.global_size, expected.global_size
    )
    np.testing.assert_array_equal(
        actual.occupancy.waves_per_cu, expected.occupancy.waves_per_cu
    )
    np.testing.assert_array_equal(
        actual.occupancy.workgroups_per_cu,
        expected.occupancy.workgroups_per_cu,
    )
    assert actual.occupancy.limiters == expected.occupancy.limiters


@pytest.fixture(scope="module")
def engine_pool():
    """Shared StudyMTModel instances so tests reuse persistent pools."""
    cache = {}

    def get(workers):
        if workers not in cache:
            cache[workers] = StudyMTModel(workers)
        return cache[workers]

    yield get
    for engine in cache.values():
        engine.close()


class TestBitExactVsBatch:
    """Tiled study output must equal interval-batch to the last bit."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_full_catalog_paper_space(self, engine_pool, workers):
        kernels = all_kernels()
        pack = KernelPack.from_kernels(kernels)
        actual = engine_pool(workers).simulate_study(pack, PAPER_SPACE)
        assert_study_bit_exact(actual, oracle_study(kernels, PAPER_SPACE))

    @pytest.mark.parametrize(
        "suite", [suite.name for suite in all_suites()]
    )
    def test_each_suite_paper_space(self, engine_pool, suite):
        kernels = all_kernels(suite)
        pack = KernelPack.from_kernels(kernels)
        actual = engine_pool(2).simulate_study(pack, PAPER_SPACE)
        assert_study_bit_exact(actual, oracle_study(kernels, PAPER_SPACE))

    @pytest.mark.parametrize(
        "space",
        [PAPER_SPACE, APU_SPACE],
        ids=["hawaii", "kaveri-apu"],
    )
    def test_both_uarch_families(self, engine_pool, space):
        kernels = all_kernels()
        pack = KernelPack.from_kernels(kernels)
        actual = engine_pool(2).simulate_study(pack, space)
        assert_study_bit_exact(actual, oracle_study(kernels, space))

    def test_vs_scalar_oracle(self, engine_pool):
        kernels = all_kernels()
        space = reduced_space(4, 4, 4)
        pack = KernelPack.from_kernels(kernels)
        study = engine_pool(2).simulate_study(pack, space)
        sim = GpuSimulator()
        for i, kernel in enumerate(kernels):
            scalar = sim.simulate_grid(
                kernel, space, mode=GridMode.SCALAR
            )
            np.testing.assert_allclose(
                study.time_s[i], scalar.time_s, rtol=RTOL
            )

    def test_single_kernel_study(self, engine_pool):
        kernels = all_kernels("proxyapps")[:1]
        pack = KernelPack.from_kernels(kernels)
        actual = engine_pool(4).simulate_study(pack, PAPER_SPACE)
        assert_study_bit_exact(actual, oracle_study(kernels, PAPER_SPACE))


class TestPoolSupervision:
    def test_pool_path_engaged(self, engine_pool):
        engine = engine_pool(2)
        pack = KernelPack.from_kernels(all_kernels())
        engine.simulate_study(pack, reduced_space(2, 2, 2))
        stats = engine.last_stats
        assert stats.pool_workers == 2
        assert stats.tiles == min(len(pack), 2 * 2)
        # Pool creation can legitimately fail in sandboxes; when it
        # does the engine must say so and fall back serially.
        if stats.used_pool:
            assert stats.fallbacks == 0
            assert not stats.worker_errors
        else:
            assert stats.pool_unavailable

    def test_workers_one_never_uses_pool(self, engine_pool):
        engine = engine_pool(1)
        pack = KernelPack.from_kernels(all_kernels("rodinia"))
        engine.simulate_study(pack, reduced_space(2, 2, 2))
        assert engine.last_stats.used_pool is False
        assert engine.last_stats.pool_unavailable is False

    def test_deterministic_across_pool_recreation(self):
        kernels = all_kernels()
        pack = KernelPack.from_kernels(kernels)
        space = reduced_space(2, 2, 2)
        engine = StudyMTModel(2)
        try:
            first = engine.simulate_study(pack, space)
            engine.close()
            second = engine.simulate_study(pack, space)
        finally:
            engine.close()
        assert_study_bit_exact(first, second)
        assert_study_bit_exact(second, oracle_study(kernels, space))

    def test_worker_death_falls_back_serially(self):
        """A tile whose worker dies mid-study degrades throughput,
        never the result: the failed and uncollected tiles rerun
        serially and the next study gets a fresh pool."""
        kernels = all_kernels()
        pack = KernelPack.from_kernels(kernels)
        space = reduced_space(2, 2, 2)
        engine = StudyMTModel(
            4, tile_timeout_s=10.0, _chaos_kill_tiles=(1,)
        )
        try:
            wounded = engine.simulate_study(pack, space)
            stats = engine.last_stats
            if stats.used_pool:
                assert stats.worker_errors
                assert stats.fallbacks > 0
            assert_study_bit_exact(wounded, oracle_study(kernels, space))
            healthy = engine.simulate_study(pack, space)
            if engine.last_stats.used_pool:
                assert engine.last_stats.fallbacks == 0
                assert not engine.last_stats.worker_errors
            assert_study_bit_exact(healthy, wounded)
        finally:
            engine.close()

    def test_worker_models_built_once_per_pool_lifetime(self, engine_pool):
        """Each worker process constructs exactly one BatchIntervalModel,
        however many tiles and studies it serves."""
        engine = engine_pool(2)
        pack = KernelPack.from_kernels(all_kernels())
        for _ in range(3):
            engine.simulate_study(pack, reduced_space(2, 2, 2))
            stats = engine.last_stats
            if not stats.used_pool:
                pytest.skip("process pools unavailable in this sandbox")
            assert stats.worker_models
            assert all(
                count == 1 for count in stats.worker_models.values()
            )


class TestEngineIdentity:
    def test_call_shape_flags(self):
        engine = StudyMTModel(1)
        assert engine.supports_study is True
        assert engine.supports_point is False
        assert engine.supports_grid is False

    def test_descriptor_shares_interval_fingerprint(self):
        descriptor = StudyMTModel(1).descriptor()
        assert descriptor.name == "study-mt"
        assert descriptor.family == "interval"
        assert descriptor.fidelity == "exact"
        assert descriptor.error_budget == 0.0
        # Bit-exact engines share cache entries: identical material.
        assert (
            descriptor.fingerprint_material()
            == INTERVAL_BATCH_DESCRIPTOR.fingerprint_material()
        )

    def test_facade_resolves_family_siblings(self):
        sim = GpuSimulator("study-mt")
        assert sim.supports_study
        assert sim.supports_grid
        assert sim.supports_point


class TestSweepRunnerStudyMT:
    def test_dataset_identical_to_default_study(self):
        kernels = all_kernels()
        space = reduced_space(2, 2, 2)
        default = SweepRunner(grid_mode=GridMode.STUDY).run(
            kernels, space
        )
        tiled = SweepRunner(
            "study-mt", grid_mode=GridMode.STUDY
        ).run(kernels, space)
        np.testing.assert_array_equal(default.perf, tiled.perf)
        assert default.kernel_names == tiled.kernel_names
        assert tiled.quarantined == {}

    def test_fault_engine_keeps_quarantine_attribution(self):
        kernels = all_kernels("proxyapps")
        space = reduced_space(4, 4, 4)
        target = kernels[2].full_name
        faulty = FaultyEngine(
            GpuSimulator("study-mt"),
            [FaultSpec(kind=FaultKind.RAISE, kernel_name=target,
                       message="study-mt fallback boom")],
        )
        runner = SweepRunner(
            grid_mode=GridMode.STUDY, simulator=faulty
        )
        dataset = runner.run(kernels, space, strict=False)
        assert dataset.quarantined == {target: "study-mt fallback boom"}
        assert np.isnan(dataset.perf[2]).all()


class TestKernelPackSubset:
    def test_subset_rows_are_verbatim_copies(self):
        pack = KernelPack.from_kernels(all_kernels())
        lo, hi = 3, 9
        tile = pack.subset(lo, hi)
        assert len(tile) == hi - lo
        assert tile.names == pack.names[lo:hi]
        np.testing.assert_array_equal(
            tile.geometry["global_size"],
            pack.geometry["global_size"][lo:hi],
        )

    def test_subset_tiles_reassemble_to_full_pack_study(self):
        kernels = all_kernels("polybench")
        pack = KernelPack.from_kernels(kernels)
        space = reduced_space(2, 2, 2)
        model = BatchIntervalModel()
        whole = model.simulate_study(pack, space)
        mid = len(pack) // 2
        top = model.simulate_study(pack.subset(0, mid), space)
        bottom = model.simulate_study(pack.subset(mid, len(pack)), space)
        np.testing.assert_array_equal(
            whole.time_s, np.concatenate([top.time_s, bottom.time_s])
        )

    @pytest.mark.parametrize(
        "bounds", [(-1, 2), (2, 2), (3, 1), (0, 10_000)]
    )
    def test_invalid_bounds_rejected(self, bounds):
        pack = KernelPack.from_kernels(all_kernels("proxyapps"))
        with pytest.raises(WorkloadError):
            pack.subset(*bounds)


class TestMemoizedPack:
    def test_same_catalog_returns_same_pack(self):
        clear_pack_cache()
        kernels = all_kernels("rodinia")
        assert memoized_pack(kernels) is memoized_pack(list(kernels))

    def test_pack_built_once_across_repeated_studies(self, monkeypatch):
        clear_pack_cache()
        constructions = []
        original = KernelPack.from_kernels.__func__

        def counting(cls, kernels):
            constructions.append(len(kernels))
            return original(cls, kernels)

        monkeypatch.setattr(
            pack_module.KernelPack,
            "from_kernels",
            classmethod(counting),
        )
        kernels = all_kernels("parboil")
        space = reduced_space(2, 2, 2)
        sim = GpuSimulator()
        for _ in range(3):
            sim.simulate_study(kernels, space)
        assert constructions == [len(kernels)]
        clear_pack_cache()

    def test_fingerprint_distinguishes_catalogs(self):
        rodinia = catalog_fingerprint(all_kernels("rodinia"))
        parboil = catalog_fingerprint(all_kernels("parboil"))
        assert rodinia != parboil
        assert rodinia == catalog_fingerprint(all_kernels("rodinia"))
