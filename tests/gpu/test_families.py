"""APU hardware family."""

import pytest

from repro.gpu import GpuSimulator
from repro.gpu.families import (
    APU_SPACE,
    KAVERI_FLAGSHIP,
    KAVERI_UARCH,
    apu_balance_vs_discrete,
)
from repro.gpu.products import W9100_LIKE
from repro.kernels import compute_kernel, streaming_kernel


class TestKaveriFamily:
    def test_flagship_capabilities_realistic(self):
        """A10-7850K-class: ~0.7 TFLOPS and ~34 GB/s."""
        assert 500.0 < KAVERI_FLAGSHIP.peak_gflops < 1000.0
        assert 25.0 < KAVERI_FLAGSHIP.peak_dram_gb_per_sec < 45.0

    def test_apu_is_bandwidth_starved_relative_to_discrete(self):
        assert apu_balance_vs_discrete() > 1.0

    def test_smaller_l2(self):
        assert KAVERI_UARCH.l2_bytes_total < 1 << 20

    def test_space_dimensions(self):
        assert APU_SPACE.size == 196
        cu_ratio, eng_ratio, mem_ratio = APU_SPACE.axis_ranges
        assert cu_ratio == pytest.approx(4.0)
        assert eng_ratio == pytest.approx(3.6)
        assert mem_ratio == pytest.approx(5.33)

    def test_space_uses_kaveri_uarch(self):
        for config in list(APU_SPACE)[:3]:
            assert config.uarch is KAVERI_UARCH


class TestCrossFamilyBehaviour:
    def test_discrete_beats_apu_everywhere(self):
        simulator = GpuSimulator()
        for builder in (compute_kernel, streaming_kernel):
            kernel = builder("k")
            apu_time = simulator.time_s(kernel, KAVERI_FLAGSHIP)
            discrete_time = simulator.time_s(kernel, W9100_LIKE)
            assert discrete_time < apu_time

    def test_streaming_gap_larger_than_compute_gap(self):
        """The APU's bandwidth deficit exceeds its compute deficit, so
        streaming kernels fall further behind on it."""
        simulator = GpuSimulator()
        compute_gap = simulator.time_s(
            compute_kernel("c"), KAVERI_FLAGSHIP
        ) / simulator.time_s(compute_kernel("c"), W9100_LIKE)
        streaming_gap = simulator.time_s(
            streaming_kernel("s"), KAVERI_FLAGSHIP
        ) / simulator.time_s(streaming_kernel("s"), W9100_LIKE)
        assert streaming_gap > compute_gap
