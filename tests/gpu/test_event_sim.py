"""Event-driven engine: determinism, warmup, imbalance behaviour."""


from repro.gpu import EventSimulator, HardwareConfig
from repro.gpu.event_sim import _imbalance
from repro.kernels import compute_kernel, streaming_kernel

SIM = EventSimulator()
MAX = HardwareConfig(44, 1000.0, 1250.0)


class TestDeterminism:
    def test_repeat_runs_identical(self):
        kernel = compute_kernel("c", global_size=1 << 16)
        a = SIM.simulate(kernel, MAX)
        b = SIM.simulate(kernel, MAX)
        assert a.time_s == b.time_s

    def test_imbalance_bounded(self):
        values = [_imbalance(i) for i in range(1000)]
        assert all(0.9 < v < 1.1 for v in values)

    def test_imbalance_varies(self):
        values = {_imbalance(i) for i in range(100)}
        assert len(values) > 50


class TestExecution:
    def test_all_workgroups_executed(self):
        kernel = compute_kernel("c", global_size=1 << 16)
        result = SIM.simulate(kernel, MAX)
        assert result.workgroups_executed == kernel.geometry.num_workgroups

    def test_time_positive_and_finite(self):
        result = SIM.simulate(streaming_kernel("s", global_size=1 << 16), MAX)
        assert 0 < result.time_s < 1.0

    def test_more_cus_not_slower_for_compute(self):
        kernel = compute_kernel("c", global_size=1 << 18)
        small = SIM.simulate(kernel, HardwareConfig(4, 1000, 1250))
        large = SIM.simulate(kernel, MAX)
        assert large.time_s < small.time_s

    def test_single_workgroup_launch(self):
        kernel = compute_kernel("c", global_size=256)
        result = SIM.simulate(kernel, MAX)
        assert result.workgroups_executed == 1
        assert result.time_s > 0


class TestTimeline:
    def test_timeline_off_by_default(self):
        result = SIM.simulate(compute_kernel("c", global_size=1 << 14),
                              MAX)
        assert result.timeline == ()
        assert result.cu_mean_residency() == []
        assert result.load_imbalance() == 1.0

    def test_timeline_covers_every_workgroup(self):
        kernel = compute_kernel("c", global_size=1 << 14)
        result = SIM.simulate(kernel, MAX, record_timeline=True)
        assert len(result.timeline) == kernel.geometry.num_workgroups
        workgroups = {entry.workgroup for entry in result.timeline}
        assert workgroups == set(range(len(result.timeline)))

    def test_timeline_entries_well_formed(self):
        kernel = compute_kernel("c", global_size=1 << 14)
        result = SIM.simulate(kernel, MAX, record_timeline=True)
        for entry in result.timeline:
            assert entry.finish_s > entry.start_s >= 0.0
            assert 0 <= entry.cu < 44
            assert entry.duration_s > 0

    def test_load_reasonably_balanced(self):
        kernel = compute_kernel("c", global_size=1 << 18)
        result = SIM.simulate(kernel, MAX, record_timeline=True)
        assert 1.0 <= result.load_imbalance() < 1.2

    def test_small_launch_uses_few_cus(self):
        kernel = compute_kernel("c", global_size=8 * 256)
        result = SIM.simulate(kernel, MAX, record_timeline=True)
        used_cus = {entry.cu for entry in result.timeline}
        assert len(used_cus) <= 8
