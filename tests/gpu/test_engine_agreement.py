"""Cross-validation: the two engines must agree on scaling direction.

The analytical interval model collects the dataset; the discrete-event
engine is the independent check. They share bottleneck physics but
differ in schedule dynamics, so we assert *qualitative* agreement: for
every archetype and every axis, the sign of the end-to-end response
matches (rising, flat, or falling, with a tolerance band).
"""

import pytest

from repro.gpu import Engine, GpuSimulator, HardwareConfig
from repro.kernels import ARCHETYPE_BUILDERS

INTERVAL = GpuSimulator(Engine.INTERVAL)
EVENT = GpuSimulator(Engine.EVENT)

#: Gains within [1/BAND, BAND] count as "flat" for direction purposes.
BAND = 1.25

AXES = {
    "cu": [HardwareConfig(c, 1000, 1250) for c in (4, 44)],
    "engine": [HardwareConfig(44, e, 1250) for e in (200, 1000)],
    "memory": [HardwareConfig(44, 1000, m) for m in (150, 1250)],
}


def direction(gain: float) -> int:
    if gain > BAND:
        return 1
    if gain < 1.0 / BAND:
        return -1
    return 0


@pytest.mark.parametrize("kind", sorted(ARCHETYPE_BUILDERS))
@pytest.mark.parametrize("axis", sorted(AXES))
def test_engines_agree_on_axis_direction(kind, axis):
    # Smaller grids keep the event engine fast without changing the
    # direction of any response.
    kwargs = {}
    if kind not in ("limited_parallelism", "tiny"):
        kwargs["global_size"] = 1 << 16
    kernel = ARCHETYPE_BUILDERS[kind](f"{kind}_x", suite="probe", **kwargs)
    low, high = AXES[axis]

    interval_gain = (
        INTERVAL.performance(kernel, high) / INTERVAL.performance(kernel, low)
    )
    event_gain = (
        EVENT.performance(kernel, high) / EVENT.performance(kernel, low)
    )

    di, de = direction(interval_gain), direction(event_gain)
    # Exact class match, or one engine borderline-flat while the other
    # sees a mild trend — never opposite signs.
    assert di * de >= 0, (
        f"{kind}/{axis}: interval gain {interval_gain:.2f} vs "
        f"event gain {event_gain:.2f}"
    )
