"""DRAM model: efficiency, latency composition, queueing bounds."""

import pytest

from repro.gpu import HardwareConfig, MemoryModel
from repro.gpu.memory import MAX_QUEUE_STRETCH, MIN_BANDWIDTH_EFFICIENCY


@pytest.fixture
def model():
    return MemoryModel(HardwareConfig(44, 1000.0, 1250.0))


class TestBandwidthEfficiency:
    def test_insensitive_kernel_keeps_efficiency(self, model):
        at_4 = model.bandwidth_efficiency(0.9, 0.0, 4)
        at_44 = model.bandwidth_efficiency(0.9, 0.0, 44)
        assert at_4 == at_44 == pytest.approx(0.9)

    def test_sensitive_kernel_loses_efficiency_with_cus(self, model):
        at_4 = model.bandwidth_efficiency(0.9, 1.0, 4)
        at_44 = model.bandwidth_efficiency(0.9, 1.0, 44)
        assert at_44 < at_4

    def test_efficiency_floor(self, model):
        value = model.bandwidth_efficiency(0.05, 1.0, 44)
        assert value >= MIN_BANDWIDTH_EFFICIENCY

    def test_efficiency_capped_at_one(self, model):
        assert model.bandwidth_efficiency(1.0, 0.0, 1) <= 1.0

    def test_rejects_zero_cus(self, model):
        with pytest.raises(ValueError):
            model.bandwidth_efficiency(0.9, 0.5, 0)


class TestLatency:
    def test_latency_has_fixed_component(self):
        """Maxing both clocks cannot shrink latency below the fixed
        controller/DRAM-core time — the plateau mechanism."""
        slow = MemoryModel(HardwareConfig(44, 200.0, 150.0))
        fast = MemoryModel(HardwareConfig(44, 1000.0, 1250.0))
        fixed_s = 150e-9
        assert fast.unloaded_miss_latency_s() > fixed_s
        ratio = slow.unloaded_miss_latency_s() / fast.unloaded_miss_latency_s()
        # Clock ranges are 5x/8.3x but latency shrinks far less.
        assert ratio < 4.0

    def test_latency_falls_with_engine_clock(self):
        slow = MemoryModel(HardwareConfig(44, 200.0, 1250.0))
        fast = MemoryModel(HardwareConfig(44, 1000.0, 1250.0))
        assert fast.unloaded_miss_latency_s() < slow.unloaded_miss_latency_s()

    def test_latency_falls_with_memory_clock(self):
        slow = MemoryModel(HardwareConfig(44, 1000.0, 150.0))
        fast = MemoryModel(HardwareConfig(44, 1000.0, 1250.0))
        assert fast.unloaded_miss_latency_s() < slow.unloaded_miss_latency_s()

    def test_loaded_latency_grows_with_utilisation(self, model):
        idle = model.loaded_miss_latency_s(0.0)
        busy = model.loaded_miss_latency_s(0.9)
        assert busy > idle

    def test_loaded_latency_bounded(self, model):
        base = model.unloaded_miss_latency_s()
        saturated = model.loaded_miss_latency_s(5.0)
        assert saturated <= base * MAX_QUEUE_STRETCH + 1e-12

    def test_loaded_rejects_negative_utilisation(self, model):
        with pytest.raises(ValueError):
            model.loaded_miss_latency_s(-0.1)


class TestState:
    def test_state_bundles_consistent_values(self, model):
        state = model.state(0.8, 0.0, 16)
        assert state.achieved_bytes_per_sec == pytest.approx(
            state.peak_bytes_per_sec * state.efficiency
        )
        assert state.peak_bytes_per_sec == pytest.approx(320e9)
