"""Example scripts stay runnable.

Every example is a deliverable; these tests execute the fast ones end
to end in a subprocess (fresh interpreter, like a user would) and
assert they print their headline tables.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Pannotia scaling taxonomy" in output
        assert "Summary" in output

    def test_characterize_my_kernel(self):
        output = run_example("characterize_my_kernel.py")
        assert "Your kernels, characterised" in output
        assert "csr_blocked" in output

    def test_app_speedup_analysis(self):
        output = run_example("app_speedup_analysis.py")
        assert "Program-level scaling" in output
        assert "rodinia/lud" in output

    @pytest.mark.slow
    def test_benchmark_suite_audit(self):
        output = run_example("benchmark_suite_audit.py")
        assert "Suite scalability audit" in output

    @pytest.mark.slow
    def test_design_space_exploration(self):
        output = run_example("design_space_exploration.py")
        assert "Provisioning guidance" in output

    @pytest.mark.slow
    def test_energy_aware_dvfs(self):
        output = run_example("energy_aware_dvfs.py")
        assert "Energy-aware operating points" in output

    @pytest.mark.slow
    def test_predict_new_kernel(self):
        output = run_example("predict_new_kernel.py")
        assert "Seven-probe surface prediction" in output
