"""Property-based tests (hypothesis) on core invariants.

Strategy ranges mirror the physically meaningful domains of each
quantity; the model must behave for *any* kernel in that envelope, not
just the authored catalog.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    HAWAII_UARCH,
    CacheModel,
    HardwareConfig,
    IntervalModel,
    compute_occupancy,
    plan_dispatch,
)
from repro.kernels import (
    Kernel,
    KernelCharacteristics,
    LaunchGeometry,
    ResourceUsage,
)
from repro.sweep.dataset import KernelRecord, ScalingDataset
from repro.sweep.space import reduced_space
from repro.sweep.views import Axis, AxisSlice
from repro.taxonomy import AxisBehaviour, classify_axis
from repro.taxonomy.features import axis_features_from_slice

MODEL = IntervalModel()

configs = st.builds(
    HardwareConfig,
    cu_count=st.integers(1, 64),
    engine_mhz=st.floats(100.0, 1500.0),
    memory_mhz=st.floats(100.0, 1500.0),
)

characteristics = st.builds(
    KernelCharacteristics,
    valu_ops_per_item=st.floats(1.0, 10_000.0),
    global_load_bytes_per_item=st.floats(0.0, 512.0),
    global_store_bytes_per_item=st.floats(0.0, 128.0),
    lds_bytes_per_item=st.floats(0.0, 256.0),
    l1_reuse=st.floats(0.0, 1.0),
    l2_reuse=st.floats(0.0, 1.0),
    footprint_bytes=st.floats(1024.0, 2.0**33),
    shared_footprint=st.floats(0.0, 1.0),
    coalescing_efficiency=st.floats(0.05, 1.0),
    row_locality_sensitivity=st.floats(0.0, 1.0),
    simd_efficiency=st.floats(0.05, 1.0),
    memory_parallelism=st.floats(1.0, 16.0),
    dependent_access_fraction=st.floats(0.0, 1.0),
    atomic_ops_per_item=st.floats(0.0, 4.0),
    atomic_contention=st.floats(0.0, 1.0),
    barriers_per_workgroup=st.floats(0.0, 32.0),
    launch_overhead_us=st.floats(0.0, 100.0),
)

geometries = st.builds(
    LaunchGeometry,
    global_size=st.integers(1, 1 << 24),
    workgroup_size=st.integers(1, 1024),
)

resources = st.builds(
    ResourceUsage,
    vgprs=st.integers(1, 256),
    sgprs=st.integers(1, 102),
    lds_bytes_per_workgroup=st.integers(0, 64 * 1024),
)

kernels = st.builds(
    Kernel,
    program=st.just("prop"),
    name=st.just("k"),
    suite=st.just("hyp"),
    characteristics=characteristics,
    geometry=geometries,
    resources=resources,
)


class TestHardwareConfigProperties:
    @given(configs)
    def test_peaks_positive(self, config):
        assert config.peak_gflops > 0
        assert config.peak_dram_bytes_per_sec > 0
        assert config.machine_balance_flops_per_byte > 0

    @given(configs, st.integers(1, 16))
    def test_peak_compute_monotone_in_cus(self, config, extra):
        larger = config.replace(cu_count=config.cu_count + extra)
        assert larger.peak_gflops > config.peak_gflops


class TestOccupancyProperties:
    @given(geometries, resources)
    def test_occupancy_within_architectural_bounds(self, geometry, usage):
        result = compute_occupancy(geometry, usage, HAWAII_UARCH)
        assert 1 <= result.workgroups_per_cu <= 16
        assert result.waves_per_cu == (
            result.workgroups_per_cu * geometry.waves_per_workgroup
        )

    @given(geometries, resources, st.integers(1, 64))
    def test_dispatch_invariants(self, geometry, usage, cu_count):
        occupancy = compute_occupancy(geometry, usage, HAWAII_UARCH)
        plan = plan_dispatch(geometry, occupancy, cu_count)
        assert 1 <= plan.active_cus <= cu_count
        assert plan.active_cus <= geometry.num_workgroups
        assert plan.quantisation_factor >= 1.0 - 1e-12
        assert (
            plan.batches * plan.resident_workgroups_total
            >= geometry.num_workgroups
        )


class TestCacheProperties:
    @given(kernels, st.integers(1, 44), st.integers(1, 16))
    def test_hit_rates_are_probabilities(self, kernel, cus, wgs):
        behaviour = CacheModel(HAWAII_UARCH).behaviour(kernel, cus, wgs)
        assert 0.0 <= behaviour.l1_hit_rate <= 1.0
        assert 0.0 <= behaviour.l2_hit_rate <= 1.0
        assert 0.0 <= behaviour.dram_fraction <= 1.0

    @given(kernels, st.integers(1, 16))
    def test_l2_hit_rate_non_increasing_in_cus(self, kernel, wgs):
        model = CacheModel(HAWAII_UARCH)
        rates = [
            model.l2_hit_rate(kernel, cus, wgs) for cus in (1, 4, 16, 44)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))


class TestIntervalModelProperties:
    @settings(max_examples=60)
    @given(kernels, configs)
    def test_time_positive_and_finite(self, kernel, config):
        result = MODEL.simulate(kernel, config)
        assert result.time_s > 0
        assert math.isfinite(result.time_s)
        assert result.items_per_second > 0

    @settings(max_examples=60)
    @given(kernels)
    def test_engine_clock_never_catastrophically_hurts(self, kernel):
        """Raising the engine clock may shift queueing slightly but can
        never cost more than a few percent."""
        slow = MODEL.simulate(kernel, HardwareConfig(16, 400.0, 800.0))
        fast = MODEL.simulate(kernel, HardwareConfig(16, 800.0, 800.0))
        assert fast.time_s <= slow.time_s * 1.05

    @settings(max_examples=60)
    @given(kernels)
    def test_memory_clock_never_catastrophically_hurts(self, kernel):
        slow = MODEL.simulate(kernel, HardwareConfig(16, 800.0, 400.0))
        fast = MODEL.simulate(kernel, HardwareConfig(16, 800.0, 800.0))
        assert fast.time_s <= slow.time_s * 1.05


class TestDatasetProperties:
    @settings(max_examples=25)
    @given(
        values=st.lists(
            st.floats(1e-3, 1e12),
            min_size=reduced_space(4, 4, 4).size,
            max_size=reduced_space(4, 4, 4).size,
        )
    )
    def test_save_load_round_trip(self, tmp_path_factory, values):
        space = reduced_space(4, 4, 4)
        perf = np.asarray(values).reshape((1,) + space.shape)
        dataset = ScalingDataset(
            space, [KernelRecord.from_full_name("s/p.k")], perf
        )
        path = tmp_path_factory.mktemp("ds") / "d.npz"
        restored = ScalingDataset.load(dataset.save(path))
        np.testing.assert_allclose(restored.perf, dataset.perf)


speedup_curves = st.lists(
    st.floats(0.05, 60.0), min_size=2, max_size=11
)


class TestTaxonomyProperties:
    @given(speedup_curves)
    def test_feature_extraction_total(self, curve):
        knobs = tuple(float(4 * (i + 1)) for i in range(len(curve)))
        slice_ = AxisSlice("h/x.y", Axis.CU, knobs, tuple(curve))
        features = axis_features_from_slice(slice_)
        assert 0.0 <= features.knee_position <= 1.0
        assert 0.0 <= features.drop_from_peak < 1.0
        assert math.isfinite(features.elasticity)

    @given(speedup_curves)
    def test_axis_classification_total(self, curve):
        knobs = tuple(float(4 * (i + 1)) for i in range(len(curve)))
        slice_ = AxisSlice("h/x.y", Axis.CU, knobs, tuple(curve))
        behaviour = classify_axis(axis_features_from_slice(slice_))
        assert isinstance(behaviour, AxisBehaviour)

    @given(speedup_curves)
    def test_monotone_rising_never_inverse(self, curve):
        rising = sorted(curve)
        knobs = tuple(float(4 * (i + 1)) for i in range(len(rising)))
        slice_ = AxisSlice("h/x.y", Axis.CU, knobs, tuple(rising))
        behaviour = classify_axis(axis_features_from_slice(slice_))
        assert behaviour is not AxisBehaviour.INVERSE


class TestPowerProperties:
    @given(configs)
    def test_power_positive_and_finite(self, config):
        from repro.power import DEFAULT_POWER_MODEL

        power = DEFAULT_POWER_MODEL.board_power_w(config)
        assert math.isfinite(power) and power > 0

    @given(configs, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_power_monotone_in_activity(self, config, low, high):
        from repro.power import DEFAULT_POWER_MODEL

        lo, hi = sorted((low, high))
        p_lo = DEFAULT_POWER_MODEL.board_power_w(config, lo, lo)
        p_hi = DEFAULT_POWER_MODEL.board_power_w(config, hi, hi)
        assert p_hi >= p_lo - 1e-12

    @settings(max_examples=40)
    @given(kernels, configs)
    def test_energy_accounting_consistent(self, kernel, config):
        from repro.power import EnergyModel

        result = EnergyModel().evaluate(kernel, config)
        assert result.energy_j == pytest.approx(
            result.time_s * result.power_w
        )
        assert result.power_w > 0
        assert 0.0 <= result.compute_activity <= 1.0
        assert 0.0 <= result.memory_activity <= 1.0


class TestInterpolationProperties:
    @settings(max_examples=30)
    @given(
        cu=st.integers(1, 64),
        engine=st.floats(150.0, 1100.0),
        memory=st.floats(150.0, 1250.0),
    )
    def test_interpolation_bounded_by_cube(
        self, archetype_dataset, cu, engine, memory
    ):
        from repro.predict import CubeInterpolator
        from repro.gpu import HardwareConfig

        name = archetype_dataset.kernel_names[0]
        model = CubeInterpolator(archetype_dataset, name)
        value = model.predict(HardwareConfig(cu, engine, memory))
        cube = archetype_dataset.kernel_cube(name)
        assert cube.min() * 0.999 <= value <= cube.max() * 1.001


class TestInputScalingProperties:
    @settings(max_examples=40)
    @given(kernels, st.floats(0.1, 1000.0))
    def test_scaled_kernel_remains_valid(self, kernel, factor):
        from repro.analysis import scale_input

        scaled = scale_input(kernel, factor)
        assert scaled.geometry.global_size >= 1
        assert scaled.characteristics.footprint_bytes > 0
        result = MODEL.simulate(
            scaled, HardwareConfig(16, 800.0, 800.0)
        )
        assert result.time_s > 0


class TestCounterProperties:
    @settings(max_examples=40)
    @given(kernels, configs)
    def test_counters_bounded_for_any_kernel(self, kernel, config):
        from repro.gpu.counters import collect_counters

        report = collect_counters(kernel, config)
        assert 0.0 <= report.valu_busy_fraction <= 1.0
        assert 0.0 <= report.dram_utilisation <= 1.0
        assert report.duration_us > 0
        assert report.achieved_gflops >= 0
        assert report.achieved_dram_gbps >= 0


class TestWhatIfProperties:
    @settings(max_examples=30)
    @given(kernels)
    def test_playbook_always_produces_valid_kernels(self, kernel):
        from repro.predict.what_if import STANDARD_SCENARIOS

        for scenario in STANDARD_SCENARIOS:
            optimised = scenario.apply(kernel)
            result = MODEL.simulate(
                optimised, HardwareConfig(16, 800.0, 800.0)
            )
            assert result.time_s > 0
            assert math.isfinite(result.time_s)
