"""Co-schedule model: bit-exactness, solo degeneracy, contention shape.

The tentpole invariants pinned here:

* the vectorized :meth:`CoScheduleModel.pair_surface` is **bitwise
  identical** to the per-point :meth:`pair_surface_scalar` loop for
  every surface it returns, and
* an idle partner (``kernel_b=None``) reproduces the single-kernel
  interval surface **exactly** — co-scheduling with nobody is a no-op,
  not an approximation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpu import HardwareConfig
from repro.gpu.simulator import GpuSimulator
from repro.coschedule import (
    CoScheduleModel,
    FIXED_POINT_ITERATIONS,
    partition_cus,
)
from repro.suites import all_kernels, kernel_by_name
from repro.sweep import reduced_space

#: One kernel per suite — cheap but covers every workload generator.
REPRESENTATIVES = (
    "amdapp/binarysearch.binary_search",
    "amdapp/bitonicsort.bitonic_global",
    "rodinia/bfs.kernel1",
    "shoc/fft.fft512_fwd",
)

PAIRS = (
    (REPRESENTATIVES[0], REPRESENTATIVES[1]),
    (REPRESENTATIVES[1], REPRESENTATIVES[2]),
    (REPRESENTATIVES[2], REPRESENTATIVES[3]),
    (REPRESENTATIVES[3], REPRESENTATIVES[0]),
)

SURFACE_FIELDS = (
    "time_a", "time_b", "solo_time_a", "solo_time_b",
    "demand_share_a", "demand_share_b", "makespan_s", "power_w",
    "energy_j",
)


@pytest.fixture(scope="module")
def model():
    return CoScheduleModel()


@pytest.fixture(scope="module")
def space():
    return reduced_space(4, 4, 4)


class TestPartition:
    def test_even_split(self):
        assert partition_cus(32) == (16, 16)

    def test_odd_count_keeps_both_sides(self):
        a, b = partition_cus(5)
        assert a + b == 5
        assert a >= 1 and b >= 1

    def test_share_biases_the_split(self):
        a, b = partition_cus(40, share=0.75)
        assert a == 30 and b == 10

    def test_extreme_share_clamped(self):
        assert partition_cus(8, share=0.999) == (7, 1)
        assert partition_cus(8, share=0.001) == (1, 7)

    def test_single_cu_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_cus(1)


class TestValidation:
    def test_share_outside_unit_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            CoScheduleModel(share=0.0)
        with pytest.raises(ConfigurationError):
            CoScheduleModel(share=1.0)

    def test_iterations_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CoScheduleModel(iterations=0)

    def test_single_cu_config_rejected(self, model):
        a = kernel_by_name(REPRESENTATIVES[0])
        b = kernel_by_name(REPRESENTATIVES[1])
        with pytest.raises(ConfigurationError):
            model.evaluate(
                a, b, HardwareConfig(1, 1000.0, 1250.0)
            )


class TestBatchBitExactness:
    @pytest.mark.parametrize("pair", PAIRS, ids=lambda p: f"{p[0]}+{p[1]}")
    def test_pair_surface_matches_scalar_loop(self, model, space, pair):
        kernel_a = kernel_by_name(pair[0])
        kernel_b = kernel_by_name(pair[1])
        batch = model.pair_surface(kernel_a, kernel_b, space)
        scalar = model.pair_surface_scalar(kernel_a, kernel_b, space)
        for name in SURFACE_FIELDS:
            got = getattr(batch, name)
            want = getattr(scalar, name)
            assert np.array_equal(got, want), name
        assert np.array_equal(batch.cu_a, scalar.cu_a)
        assert np.array_equal(batch.cu_b, scalar.cu_b)

    def test_idle_partner_matches_scalar_loop(self, model, space):
        kernel = kernel_by_name(REPRESENTATIVES[0])
        batch = model.pair_surface(kernel, None, space)
        scalar = model.pair_surface_scalar(kernel, None, space)
        assert np.array_equal(batch.time_a, scalar.time_a)
        assert np.array_equal(batch.makespan_s, scalar.makespan_s)
        assert np.array_equal(batch.energy_j, scalar.energy_j)


class TestSoloDegeneracy:
    @pytest.mark.parametrize("name", REPRESENTATIVES)
    def test_idle_partner_reproduces_solo_surface(
        self, model, space, name
    ):
        """An idle partner is exactly the single-kernel model."""
        kernel = kernel_by_name(name)
        surface = model.pair_surface(kernel, None, space)
        solo = GpuSimulator("interval").simulate_grid(kernel, space)
        assert np.array_equal(surface.time_a, solo.time_s)
        assert surface.time_b is None
        assert surface.kernel_b is None
        assert np.array_equal(surface.demand_share_a, np.ones(space.shape))

    def test_idle_partner_point_matches_grid(self, model, space):
        kernel = kernel_by_name(REPRESENTATIVES[1])
        surface = model.pair_surface(kernel, None, space)
        result = model.evaluate(kernel, None, space.config(1, 1, 1))
        assert result.a.time_s == surface.time_a[1, 1, 1]
        assert result.b is None
        assert result.stp == pytest.approx(1.0 / result.a.slowdown)


class TestContentionShape:
    @pytest.mark.parametrize("pair", PAIRS, ids=lambda p: f"{p[0]}+{p[1]}")
    def test_slowdowns_at_least_one(self, model, space, pair):
        """Sharing the device never speeds a kernel up."""
        surface = model.pair_surface(
            kernel_by_name(pair[0]), kernel_by_name(pair[1]), space
        )
        assert (surface.slowdown_a >= 1.0 - 1e-12).all()
        assert (surface.slowdown_b >= 1.0 - 1e-12).all()
        assert (surface.antt >= 1.0 - 1e-12).all()
        assert (surface.stp <= 2.0 + 1e-12).all()
        assert (surface.stp > 0.0).all()

    def test_shares_live_in_fair_reclaim_band(self, model, space):
        """The fixed point allocates each kernel at least its half-pipe
        entitlement; reclaim can only push a share toward 1."""
        surface = model.pair_surface(
            kernel_by_name(REPRESENTATIVES[0]),
            kernel_by_name(REPRESENTATIVES[1]),
            space,
        )
        for share in (surface.demand_share_a, surface.demand_share_b):
            assert (share >= 0.5).all()
            assert (share <= 1.0).all()

    def test_no_starvation_for_mismatched_pair(self, model):
        """A lower-efficiency bandwidth kernel keeps half the pipe
        instead of collapsing to a zero share (the failure mode of
        proportional-to-achieved-demand sharing)."""
        result = model.evaluate(
            kernel_by_name("amdapp/binarysearch.binary_search"),
            kernel_by_name("amdapp/bitonicsort.bitonic_global"),
            HardwareConfig(32, 700.0, 837.5),
        )
        assert result.a.slowdown < 4.0
        assert result.b.slowdown < 4.0
        assert result.antt < 4.0

    def test_makespan_and_energy_consistent(self, model, space):
        surface = model.pair_surface(
            kernel_by_name(REPRESENTATIVES[1]),
            kernel_by_name(REPRESENTATIVES[2]),
            space,
        )
        expected = np.maximum(surface.time_a, surface.time_b)
        assert np.array_equal(surface.makespan_s, expected)
        assert np.array_equal(
            surface.energy_j, surface.makespan_s * surface.power_w
        )

    def test_iterations_converged(self, space):
        """The share fixed point is insensitive to extra rounds: the
        default count already sits within ~1e-6 of the limit."""
        kernel_a = kernel_by_name(REPRESENTATIVES[0])
        kernel_b = kernel_by_name(REPRESENTATIVES[1])
        short = CoScheduleModel(iterations=FIXED_POINT_ITERATIONS)
        long = CoScheduleModel(iterations=4 * FIXED_POINT_ITERATIONS)
        a = short.pair_surface(kernel_a, kernel_b, space)
        b = long.pair_surface(kernel_a, kernel_b, space)
        np.testing.assert_allclose(a.time_a, b.time_a, rtol=1e-5)
        np.testing.assert_allclose(a.time_b, b.time_b, rtol=1e-5)


class TestCatalogSweep:
    def test_every_catalog_kernel_survives_pairing(self, model):
        """Every kernel co-scheduled with a fixed partner yields
        finite, positive times at a mid-grid configuration."""
        partner = kernel_by_name(REPRESENTATIVES[1])
        config = HardwareConfig(20, 600.0, 700.0)
        for kernel in all_kernels():
            if kernel.full_name == partner.full_name:
                continue
            result = model.evaluate(kernel, partner, config)
            assert result.a.time_s > 0.0
            assert result.b.time_s > 0.0
            assert np.isfinite(result.energy_j)
