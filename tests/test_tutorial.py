"""The tutorial's code blocks must execute.

Documentation that silently rots is worse than none: every ``python``
block in docs/TUTORIAL.md runs here, sharing one namespace in document
order (later blocks build on earlier ones).
"""

import contextlib
import io
import re
from pathlib import Path

import pytest

TUTORIAL = (
    Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"
)


def code_blocks():
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestTutorial:
    def test_tutorial_exists_with_code(self):
        assert TUTORIAL.exists()
        assert len(code_blocks()) >= 5

    def test_all_blocks_execute_in_order(self):
        namespace = {}
        for index, block in enumerate(code_blocks()):
            buffer = io.StringIO()
            try:
                with contextlib.redirect_stdout(buffer):
                    exec(block, namespace)  # noqa: S102 - doc test
            except Exception as exc:  # pragma: no cover - diagnostic
                pytest.fail(f"tutorial block {index} failed: {exc}")

    def test_tutorial_classifies_the_example_kernel(self):
        namespace = {}
        for block in code_blocks():
            with contextlib.redirect_stdout(io.StringIO()):
                exec(block, namespace)
        label = namespace["label"]
        assert label.category.value == "bandwidth_bound"
