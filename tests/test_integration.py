"""Whole-pipeline integration tests.

Exercises the complete path a user takes: catalog -> sweep -> dataset
persistence -> taxonomy -> analyses -> reports, and the stability
properties the study depends on (determinism, suite decomposability).
"""

import numpy as np

from repro import classify
from repro.analysis import analyse_all_suites, speedup_summary
from repro.report import ExperimentContext, run_experiment
from repro.suites import all_kernels
from repro.sweep import ScalingDataset, SweepRunner, reduced_space
from repro.taxonomy import TaxonomyCategory, evaluate_agreement


class TestEndToEnd:
    def test_full_pipeline_on_reduced_grid(self, tmp_path):
        kernels = all_kernels("pannotia")
        space = reduced_space(2, 2, 2)
        dataset = SweepRunner().run(kernels, space)

        path = dataset.save(tmp_path / "pannotia.npz")
        restored = ScalingDataset.load(path)
        taxonomy = classify(restored)

        assert len(taxonomy.labels) == 30
        counts = taxonomy.category_counts()
        assert sum(counts.values()) == 30

        suites = analyse_all_suites(restored)
        assert "pannotia" in suites

        summary = speedup_summary(restored, taxonomy)
        assert summary["overall_median"] > 1.0

    def test_sweep_is_deterministic(self):
        kernels = all_kernels("proxyapps")[:5]
        space = reduced_space(4, 4, 4)
        a = SweepRunner().run(kernels, space)
        b = SweepRunner().run(kernels, space)
        np.testing.assert_array_equal(a.perf, b.perf)

    def test_subset_classification_matches_full(
        self, paper_dataset, paper_taxonomy
    ):
        """Labels are per-kernel: classifying a suite's subset must
        reproduce the full-dataset labels exactly."""
        subset_names = [
            r.full_name
            for r in paper_dataset.kernel_records
            if r.suite == "shoc"
        ]
        subset = paper_dataset.subset(subset_names)
        subset_taxonomy = classify(subset)
        for label in subset_taxonomy.labels:
            full_label = paper_taxonomy.label_for(label.kernel_name)
            assert label.category is full_label.category

    def test_experiment_pipeline_shares_context(self, paper_dataset):
        ctx = ExperimentContext()
        ctx._dataset = paper_dataset  # reuse the session sweep
        t3 = run_experiment("T3", ctx)
        f6 = run_experiment("F6", ctx)
        assert t3.data["counts"] == f6.data["counts"]


class TestPaperHeadlines:
    """The abstract's qualitative claims, asserted end-to-end."""

    def test_kernels_scale_with_compute_capability(self, paper_taxonomy):
        counts = paper_taxonomy.category_counts()
        assert counts[TaxonomyCategory.COMPUTE_BOUND] >= 30

    def test_kernels_scale_with_memory_bandwidth(self, paper_taxonomy):
        counts = paper_taxonomy.category_counts()
        assert counts[TaxonomyCategory.BANDWIDTH_BOUND] >= 20

    def test_kernels_lose_performance_with_more_cus(self, paper_taxonomy):
        counts = paper_taxonomy.category_counts()
        assert counts[TaxonomyCategory.CU_INVERSE] >= 5

    def test_kernels_plateau_despite_clock_headroom(self, paper_taxonomy):
        counts = paper_taxonomy.category_counts()
        assert counts[TaxonomyCategory.PLATEAU] >= 10

    def test_taxonomy_is_data_supported(self, paper_dataset,
                                         paper_taxonomy):
        agreement = evaluate_agreement(paper_dataset, paper_taxonomy)
        assert agreement.agrees
