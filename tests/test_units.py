"""Unit conversions."""

import pytest

from repro import units


class TestClockConversions:
    def test_mhz_round_trip(self):
        assert units.hz_to_mhz(units.mhz_to_hz(937.5)) == pytest.approx(
            937.5
        )

    def test_mhz_to_hz(self):
        assert units.mhz_to_hz(1000.0) == 1e9


class TestTimeConversions:
    def test_us_round_trip(self):
        assert units.us_to_seconds(units.seconds_to_us(0.125)) == (
            pytest.approx(0.125)
        )

    def test_ns_round_trip(self):
        assert units.ns_to_seconds(units.seconds_to_ns(3e-7)) == (
            pytest.approx(3e-7)
        )

    def test_known_values(self):
        assert units.us_to_seconds(1.0) == 1e-6
        assert units.ns_to_seconds(150.0) == 1.5e-7


class TestSizeAndBandwidth:
    def test_binary_prefixes(self):
        assert units.KIB == 1024
        assert units.MIB == 1024 ** 2
        assert units.GIB == 1024 ** 3

    def test_decimal_prefixes(self):
        assert units.GB == 1_000_000_000

    def test_bandwidth_round_trip(self):
        rate = 320.0
        assert units.bytes_per_sec_to_gb_per_sec(
            units.gb_per_sec_to_bytes_per_sec(rate)
        ) == pytest.approx(rate)

    def test_bytes_to_gb_is_decimal(self):
        assert units.bytes_to_gb(320e9) == pytest.approx(320.0)
