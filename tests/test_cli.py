"""CLI: argument parsing and command behaviour."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_catalog_parses(self):
        args = build_parser().parse_args(["catalog"])
        assert args.command == "catalog"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.out == "scaling_dataset.npz"
        assert args.csv is None

    def test_report_accepts_ids(self):
        args = build_parser().parse_args(["report", "T1", "F7"])
        assert args.experiments == ["T1", "F7"]


class TestCommands:
    def test_catalog_prints_totals(self, capsys):
        assert main(["catalog"]) == 0
        output = capsys.readouterr().out
        assert "97" in output and "267" in output

    def test_report_single_table(self, capsys):
        assert main(["report", "T1"]) == 0
        output = capsys.readouterr().out
        assert "Benchmark suites" in output

    @staticmethod
    def _shrink_sweep(monkeypatch, count=4):
        """Point the sweep command at a tiny campaign for speed."""
        import repro.cli as cli_module
        from repro.suites import all_kernels
        from repro.sweep import reduced_space

        kernels = all_kernels()[:count]
        monkeypatch.setattr(cli_module, "all_kernels", lambda: kernels)
        monkeypatch.setattr(cli_module, "PAPER_SPACE",
                            reduced_space(4, 4, 4))
        return kernels

    def test_sweep_writes_dataset(self, tmp_path, capsys, monkeypatch):
        self._shrink_sweep(monkeypatch)
        out = tmp_path / "data.npz"
        csv = tmp_path / "data.csv"
        assert main(["sweep", "--out", str(out), "--csv", str(csv)]) == 0
        assert out.exists() and csv.exists()
        output = capsys.readouterr().out
        assert "campaign:" in output

    def test_sweep_engine_mode_flag(self, tmp_path, monkeypatch):
        # The escape hatch forwards the chosen grid path to the runner.
        import repro.sweep.runner as runner_module
        from repro.gpu import GridMode

        self._shrink_sweep(monkeypatch, count=2)
        seen = {}
        real_runner = runner_module.SweepRunner

        class RecordingRunner(real_runner):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                seen["grid_mode"] = self.grid_mode

        monkeypatch.setattr(runner_module, "SweepRunner",
                            RecordingRunner)
        out = tmp_path / "data.npz"
        assert main(["sweep", "--out", str(out),
                     "--engine-mode", "scalar"]) == 0
        assert seen["grid_mode"] is GridMode.SCALAR
        assert main(["sweep", "--out", str(out)]) == 0
        assert seen["grid_mode"] is GridMode.BATCH

    def test_sweep_resume_uses_journal(self, tmp_path, capsys,
                                       monkeypatch):
        self._shrink_sweep(monkeypatch)
        out = tmp_path / "data.npz"
        journal = tmp_path / "data.npz.journal"
        assert main(["sweep", "--out", str(out),
                     "--chunk-size", "2"]) == 0
        assert journal.is_dir()
        first = capsys.readouterr().out
        assert "0 resumed" in first
        assert main(["sweep", "--out", str(out),
                     "--chunk-size", "2", "--resume"]) == 0
        second = capsys.readouterr().out
        assert "2 resumed" in second and "0 executed" in second

    def test_sweep_parser_campaign_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--resume", "--strict", "--journal", "j",
             "--chunk-size", "8", "--workers", "2"]
        )
        assert args.resume and args.strict
        assert args.journal == "j"
        assert args.chunk_size == 8
        assert args.workers == 2

    def test_classify_from_saved_dataset(self, tmp_path, capsys):
        from repro.suites import all_kernels
        from repro.sweep import SweepRunner, reduced_space

        dataset = SweepRunner().run(
            all_kernels()[:4], reduced_space(4, 4, 4)
        )
        path = dataset.save(tmp_path / "d.npz")
        assert main(["classify", "--data", str(path)]) == 0
        assert "Taxonomy classification" in capsys.readouterr().out

    def test_classify_drops_quarantined_rows(self, tmp_path, capsys):
        import numpy as np

        from repro.suites import all_kernels
        from repro.sweep import ScalingDataset, SweepRunner, reduced_space

        kernels = all_kernels()[:4]
        clean = SweepRunner().run(kernels, reduced_space(4, 4, 4))
        perf = clean.perf.copy()
        perf[1] = np.nan
        bad_name = kernels[1].full_name
        dataset = ScalingDataset(
            clean.space, clean.kernel_records, perf,
            quarantined={bad_name: "injected fault"},
        )
        path = dataset.save(tmp_path / "q.npz")
        assert main(["classify", "--data", str(path)]) == 0
        captured = capsys.readouterr()
        assert "Taxonomy classification" in captured.out
        assert bad_name in captured.err

    def test_kernel_inspection(self, tmp_path, capsys):
        from repro.suites import all_kernels
        from repro.sweep import SweepRunner, reduced_space

        kernels = all_kernels()[:2]
        dataset = SweepRunner().run(kernels, reduced_space(4, 4, 4))
        path = dataset.save(tmp_path / "d.npz")
        name = kernels[0].full_name
        assert main(["kernel", name, "--data", str(path)]) == 0
        output = capsys.readouterr().out
        assert name in output
        assert "category:" in output


class TestCacheFlags:
    def test_parser_accepts_cache_flags(self):
        for command in (["classify"], ["report"], ["kernel", "k"]):
            args = build_parser().parse_args(
                command + ["--no-cache", "--cache-dir", "c"]
            )
            assert args.no_cache and args.cache_dir == "c"

    def test_cache_info_empty(self, tmp_path, capsys):
        assert main(["cache", "info",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        output = capsys.readouterr().out
        assert "entries:         0" in output

    def test_classify_populates_then_hits_cache(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.gpu.simulator import (
            engine_call_count,
            reset_engine_call_count,
        )
        from repro.suites import all_kernels

        kernels = all_kernels()[:4]
        monkeypatch.setattr(
            "repro.suites.all_kernels", lambda: kernels
        )
        monkeypatch.setattr(
            "repro.cli.collect_paper_dataset",
            lambda **kw: (_ for _ in ()).throw(
                AssertionError("cache path not taken")
            ),
        )
        cache_dir = tmp_path / "cache"
        assert main(["classify", "--cache-dir", str(cache_dir)]) == 0
        assert list(cache_dir.glob("sweep_*.npz"))
        reset_engine_call_count()
        assert main(["classify", "--cache-dir", str(cache_dir)]) == 0
        assert engine_call_count() == 0

        assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
        assert "entries:         1" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert not list(cache_dir.glob("sweep_*.npz"))

    def test_report_cached_rerun_skips_simulation(self, tmp_path, capsys):
        from repro.gpu.simulator import (
            engine_call_count,
            reset_engine_call_count,
        )

        cache_dir = tmp_path / "cache"
        assert main(["report", "T3", "--cache-dir", str(cache_dir)]) == 0
        assert list(cache_dir.glob("sweep_*.npz"))
        reset_engine_call_count()
        assert main(["report", "T3", "--cache-dir", str(cache_dir)]) == 0
        assert engine_call_count() == 0, (
            "cached gpuscale report must not simulate"
        )
        assert "T3" in capsys.readouterr().out

    def test_no_cache_bypasses_store(self, tmp_path, monkeypatch):
        from repro.suites import all_kernels
        from repro.sweep import reduced_space

        kernels = all_kernels()[:4]
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("GPUSCALE_CACHE_DIR", str(cache_dir))
        import repro.cli as cli_module
        import repro.sweep.runner as runner_module

        monkeypatch.setattr(
            cli_module, "collect_paper_dataset",
            lambda **kw: runner_module.SweepRunner().run(
                kernels, reduced_space(4, 4, 4)
            ),
        )
        assert main(["classify", "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_sweep_engine_mode_study_forwarded(self, tmp_path,
                                               monkeypatch):
        import repro.sweep.runner as runner_module
        from repro.gpu import GridMode

        TestCommands._shrink_sweep(monkeypatch, count=2)
        seen = {}
        real_runner = runner_module.SweepRunner

        class RecordingRunner(real_runner):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                seen["grid_mode"] = self.grid_mode

        monkeypatch.setattr(runner_module, "SweepRunner",
                            RecordingRunner)
        out = tmp_path / "data.npz"
        assert main(["sweep", "--out", str(out),
                     "--engine-mode", "study"]) == 0
        assert seen["grid_mode"] is GridMode.STUDY


class TestEnergyCommand:
    def test_energy_default_objective(self, capsys):
        assert main(["energy", "shoc/triad.triad"]) == 0
        output = capsys.readouterr().out
        assert "operating point:" in output
        assert "min_edp" in output

    def test_energy_with_cap(self, capsys):
        assert main(
            ["energy", "shoc/triad.triad", "--objective", "max_perf",
             "--power-cap", "120"]
        ) == 0
        output = capsys.readouterr().out
        assert "cap 120.0 W" in output

    def test_energy_rejects_bad_objective(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["energy", "shoc/triad.triad", "--objective", "warp9"]
            )


class TestReportArtifacts:
    def test_report_out_writes_files(self, tmp_path, capsys):
        assert main(["report", "T1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "T1.md").exists()
        assert (tmp_path / "INDEX.md").exists()


class TestSummaryCommand:
    def test_summary_prints_abstract(self, capsys):
        assert main(["summary"]) == 0
        output = capsys.readouterr().out
        assert "267 GPGPU kernels" in output


class TestWhatIfCommand:
    def test_whatif_ranks_playbook(self, capsys):
        assert main(["whatif", "pannotia/sssp.relax_edges"]) == 0
        output = capsys.readouterr().out
        assert "What-if playbook" in output
        assert "break_chains" in output


class TestCatalogPrograms:
    def test_programs_listing(self, capsys):
        assert main(["catalog", "--programs", "pannotia"]) == 0
        output = capsys.readouterr().out
        assert "pagerank" in output
        assert "Betweenness centrality" in output


class TestEnginesCommand:
    def test_engines_lists_registry(self, capsys):
        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        assert "Registered timing engines" in output
        for name in (
            "interval", "interval-batch", "study-mt", "event",
            "predictor",
        ):
            assert name in output
        # Capability matrix and descriptor columns are rendered.
        for column in (
            "point", "grid", "study", "family", "version", "fidelity",
        ):
            assert column in output
        assert "v1" in output
        # The fidelity-tier ladder is visible in the table.
        for tier in ("reference", "exact", "approximate"):
            assert tier in output

    def test_engines_reflects_new_registration(self, capsys):
        from repro.gpu.engine import (
            EngineCapabilities,
            register_engine,
            unregister_engine,
        )

        register_engine(
            "test-cli-engine",
            object,
            capabilities=EngineCapabilities(point=True),
            summary="registered mid-session",
        )
        try:
            assert main(["engines"]) == 0
            output = capsys.readouterr().out
            assert "test-cli-engine" in output
            assert "registered mid-session" in output
        finally:
            unregister_engine("test-cli-engine")

    def test_sweep_engine_flag_forwards_to_runner(
        self, tmp_path, monkeypatch
    ):
        import repro.sweep.runner as runner_module
        from repro.suites import all_kernels
        from repro.sweep import reduced_space

        import repro.cli as cli_module

        kernels = all_kernels()[:2]
        monkeypatch.setattr(cli_module, "all_kernels", lambda: kernels)
        monkeypatch.setattr(cli_module, "PAPER_SPACE",
                            reduced_space(4, 4, 4))
        seen = {}
        real_runner = runner_module.SweepRunner

        class RecordingRunner(real_runner):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                seen["engine"] = self.engine_name

        monkeypatch.setattr(runner_module, "SweepRunner",
                            RecordingRunner)
        out = tmp_path / "data.npz"
        assert main(["sweep", "--out", str(out),
                     "--engine", "event"]) == 0
        assert seen["engine"] == "event"
        assert main(["sweep", "--out", str(out)]) == 0
        assert seen["engine"] == "interval"

    def test_sweep_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--engine", "warp-drive"])
        assert "invalid choice" in capsys.readouterr().err


class TestFamilies:
    def test_families_lists_registry(self, capsys):
        assert main(["families"]) == 0
        output = capsys.readouterr().out
        for name in ("hawaii", "kaveri", "maxwell", "fiji"):
            assert name in output

    def test_transfer_requires_families(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["transfer", "rodinia/bfs.kernel1"]
            )
        assert "--from" in capsys.readouterr().err

    def test_transfer_kernel_prediction(self, capsys):
        assert main([
            "transfer", "rodinia/bfs.kernel1",
            "--from", "hawaii", "--to", "kaveri",
        ]) == 0
        output = capsys.readouterr().out
        assert "predicted class" in output
        assert "corpus neighbours" in output

    def test_transfer_json_mode(self, capsys):
        import json

        assert main([
            "transfer", "rodinia/bfs.kernel1",
            "--from", "hawaii", "--to", "kaveri", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source_family"] == "hawaii"
        assert payload["target_family"] == "kaveri"
        assert payload["category"]

    def test_transfer_without_kernel_needs_evaluate(self, capsys):
        assert main([
            "transfer", "--from", "hawaii", "--to", "kaveri",
        ]) == 2
        assert "kernel identifier" in capsys.readouterr().err
