"""Program-level workload composition."""

import pytest

from repro.errors import WorkloadError
from repro.gpu import HardwareConfig
from repro.kernels import compute_kernel, tiny_kernel
from repro.kernels.workload import KernelInvocation, ProgramProfile

MAX = HardwareConfig(44, 1000.0, 1250.0)
MIN = HardwareConfig(4, 200.0, 150.0)


@pytest.fixture
def mixed_program():
    """A solver: one setup launch + many iterations of a hot kernel."""
    return ProgramProfile.from_counts(
        "solver",
        [
            (tiny_kernel("solver", "setup", suite="app"), 1),
            (compute_kernel("solver", "iterate", suite="app",
                            global_size=1 << 18), 200),
        ],
    )


class TestValidation:
    def test_rejects_zero_count(self):
        with pytest.raises(WorkloadError):
            KernelInvocation(compute_kernel("c"), count=0)

    def test_rejects_empty_program(self):
        with pytest.raises(WorkloadError):
            ProgramProfile(name="p", invocations=())

    def test_rejects_unnamed_program(self):
        with pytest.raises(WorkloadError):
            ProgramProfile.from_counts("", [(compute_kernel("c"), 1)])


class TestComposition:
    def test_total_time_sums_weighted_kernels(self, mixed_program):
        from repro.gpu import GpuSimulator

        simulator = GpuSimulator()
        expected = sum(
            inv.count * simulator.time_s(inv.kernel, MAX)
            for inv in mixed_program.invocations
        )
        assert mixed_program.total_time_s(MAX) == pytest.approx(expected)

    def test_attribution_sums_to_one(self, mixed_program):
        attribution = mixed_program.time_attribution(MAX)
        assert sum(attribution.values()) == pytest.approx(1.0)

    def test_hot_kernel_dominates(self, mixed_program):
        attribution = mixed_program.time_attribution(MIN)
        assert attribution["app/solver.iterate"] > 0.9

    def test_program_speedup_below_hot_kernel_speedup(self,
                                                      mixed_program):
        """Amdahl: the setup kernel's overhead caps program speedup
        below the hot kernel's own speedup."""
        from repro.gpu import GpuSimulator

        simulator = GpuSimulator()
        hot = mixed_program.invocations[1].kernel
        hot_speedup = simulator.time_s(hot, MIN) / simulator.time_s(
            hot, MAX
        )
        program_speedup = mixed_program.speedup(MAX, MIN)
        assert 1.0 < program_speedup < hot_speedup

    def test_amdahl_cap_names_the_limiter(self, mixed_program):
        limiter, cap = mixed_program.amdahl_cap(MAX, MIN)
        achieved = mixed_program.speedup(MAX, MIN)
        assert cap >= achieved
        assert limiter in ("app/solver.setup", "app/solver.iterate")
