"""KernelCharacteristics validation and derived quantities."""

import pytest

from repro.errors import WorkloadError
from repro.kernels import KernelCharacteristics


def make(**kwargs):
    defaults = {
        "valu_ops_per_item": 100.0,
        "global_load_bytes_per_item": 16.0,
    }
    defaults.update(kwargs)
    return KernelCharacteristics(**defaults)


class TestValidation:
    def test_accepts_minimal_definition(self):
        ch = make()
        assert ch.valu_ops_per_item == 100.0

    def test_rejects_negative_ops(self):
        with pytest.raises(WorkloadError):
            make(valu_ops_per_item=-1.0)

    def test_rejects_nan(self):
        with pytest.raises(WorkloadError):
            make(footprint_bytes=float("nan"))

    def test_rejects_infinite(self):
        with pytest.raises(WorkloadError):
            make(launch_overhead_us=float("inf"))

    @pytest.mark.parametrize(
        "field",
        [
            "l1_reuse",
            "l2_reuse",
            "coalescing_efficiency",
            "dependent_access_fraction",
            "atomic_contention",
            "shared_footprint",
            "row_locality_sensitivity",
        ],
    )
    def test_unit_interval_fields_bounded(self, field):
        with pytest.raises(WorkloadError):
            make(**{field: 1.5})
        with pytest.raises(WorkloadError):
            make(**{field: -0.1})

    def test_rejects_sub_one_memory_parallelism(self):
        with pytest.raises(WorkloadError):
            make(memory_parallelism=0.5)

    def test_rejects_zero_simd_efficiency(self):
        with pytest.raises(WorkloadError):
            make(simd_efficiency=0.0)


class TestDerived:
    def test_total_bytes_sums_loads_and_stores(self):
        ch = make(global_load_bytes_per_item=24.0,
                  global_store_bytes_per_item=8.0)
        assert ch.global_bytes_per_item == 32.0

    def test_arithmetic_intensity(self):
        ch = make(valu_ops_per_item=64.0, global_load_bytes_per_item=16.0)
        assert ch.arithmetic_intensity == pytest.approx(4.0)

    def test_intensity_infinite_without_traffic(self):
        ch = make(global_load_bytes_per_item=0.0)
        assert ch.arithmetic_intensity == float("inf")


class TestSerialisation:
    def test_round_trip(self):
        ch = make(l2_reuse=0.7, atomic_ops_per_item=2.0)
        assert KernelCharacteristics.from_dict(ch.to_dict()) == ch

    def test_from_dict_ignores_unknown_keys(self):
        payload = make().to_dict()
        payload["future_field"] = 42
        restored = KernelCharacteristics.from_dict(payload)
        assert restored.valu_ops_per_item == 100.0

    def test_replace_validates(self):
        with pytest.raises(WorkloadError):
            make().replace(l2_reuse=2.0)

    def test_replace_preserves_other_fields(self):
        ch = make(l1_reuse=0.3)
        changed = ch.replace(valu_ops_per_item=50.0)
        assert changed.l1_reuse == 0.3
        assert changed.valu_ops_per_item == 50.0
