"""Kernel, LaunchGeometry, ResourceUsage."""

import pytest

from repro.errors import WorkloadError
from repro.kernels import (
    Kernel,
    KernelCharacteristics,
    LaunchGeometry,
    ResourceUsage,
)


def make_kernel(**kwargs):
    defaults = {
        "program": "prog",
        "name": "k1",
        "suite": "suite",
        "characteristics": KernelCharacteristics(
            valu_ops_per_item=10.0, global_load_bytes_per_item=4.0
        ),
        "geometry": LaunchGeometry(1024, 256),
    }
    defaults.update(kwargs)
    return Kernel(**defaults)


class TestLaunchGeometry:
    def test_workgroup_count_rounds_up(self):
        assert LaunchGeometry(1000, 256).num_workgroups == 4

    def test_waves_per_workgroup_rounds_up(self):
        assert LaunchGeometry(1024, 100).waves_per_workgroup == 2

    def test_total_waves(self):
        geometry = LaunchGeometry(1024, 256)
        assert geometry.total_waves == 4 * 4

    def test_rejects_zero_global_size(self):
        with pytest.raises(WorkloadError):
            LaunchGeometry(0, 256)

    def test_rejects_zero_workgroup(self):
        with pytest.raises(WorkloadError):
            LaunchGeometry(1024, 0)

    def test_rejects_oversized_workgroup(self):
        with pytest.raises(WorkloadError):
            LaunchGeometry(4096, 2048)


class TestResourceUsage:
    def test_defaults_valid(self):
        usage = ResourceUsage()
        assert usage.vgprs == 32

    @pytest.mark.parametrize("vgprs", [0, 257])
    def test_vgpr_bounds(self, vgprs):
        with pytest.raises(WorkloadError):
            ResourceUsage(vgprs=vgprs)

    @pytest.mark.parametrize("sgprs", [0, 103])
    def test_sgpr_bounds(self, sgprs):
        with pytest.raises(WorkloadError):
            ResourceUsage(sgprs=sgprs)

    def test_rejects_negative_lds(self):
        with pytest.raises(WorkloadError):
            ResourceUsage(lds_bytes_per_workgroup=-1)


class TestKernel:
    def test_full_name_with_suite(self):
        assert make_kernel().full_name == "suite/prog.k1"

    def test_full_name_without_suite(self):
        assert make_kernel(suite="").full_name == "prog.k1"

    def test_rejects_empty_program(self):
        with pytest.raises(WorkloadError):
            make_kernel(program="")

    def test_rejects_empty_name(self):
        with pytest.raises(WorkloadError):
            make_kernel(name="")

    def test_round_trip_dict(self):
        kernel = make_kernel()
        assert Kernel.from_dict(kernel.to_dict()) == kernel

    def test_replace(self):
        kernel = make_kernel()
        renamed = kernel.replace(name="k2")
        assert renamed.name == "k2"
        assert renamed.program == "prog"
