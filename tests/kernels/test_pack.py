"""KernelPack: lossless structure-of-arrays packing.

The whole-study engine reads only the pack, so the pack must be a pure
layout transformation: every array mirrors the scalar accessors
exactly, and unpacking reconstructs the original ``Kernel`` objects
field for field.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.kernels import (
    Kernel,
    KernelCharacteristics,
    KernelPack,
    LaunchGeometry,
    ResourceUsage,
    pack_kernels,
)
from repro.kernels.pack import (
    CHARACTERISTIC_FIELDS,
    GEOMETRY_FIELDS,
    RESOURCE_FIELDS,
)
from repro.suites import all_kernels

characteristics = st.builds(
    KernelCharacteristics,
    valu_ops_per_item=st.floats(1.0, 10_000.0),
    global_load_bytes_per_item=st.floats(0.0, 512.0),
    global_store_bytes_per_item=st.floats(0.0, 128.0),
    lds_bytes_per_item=st.floats(0.0, 256.0),
    l1_reuse=st.floats(0.0, 1.0),
    l2_reuse=st.floats(0.0, 1.0),
    footprint_bytes=st.floats(1024.0, 2.0**33),
    shared_footprint=st.floats(0.0, 1.0),
    coalescing_efficiency=st.floats(0.05, 1.0),
    row_locality_sensitivity=st.floats(0.0, 1.0),
    simd_efficiency=st.floats(0.05, 1.0),
    memory_parallelism=st.floats(1.0, 16.0),
    dependent_access_fraction=st.floats(0.0, 1.0),
    atomic_ops_per_item=st.floats(0.0, 4.0),
    atomic_contention=st.floats(0.0, 1.0),
    barriers_per_workgroup=st.floats(0.0, 32.0),
    launch_overhead_us=st.floats(0.0, 100.0),
)

geometries = st.builds(
    LaunchGeometry,
    global_size=st.integers(1, 1 << 24),
    workgroup_size=st.integers(1, 1024),
)

resources = st.builds(
    ResourceUsage,
    vgprs=st.integers(1, 256),
    sgprs=st.integers(1, 102),
    lds_bytes_per_workgroup=st.integers(0, 64 * 1024),
)

kernel_lists = st.lists(
    st.builds(
        Kernel,
        program=st.just("prop"),
        name=st.just("k"),
        suite=st.just("hyp"),
        characteristics=characteristics,
        geometry=geometries,
        resources=resources,
    ),
    min_size=1,
    max_size=8,
).map(
    lambda ks: [
        dataclasses.replace(k, name=f"k{i}") for i, k in enumerate(ks)
    ]
)


class TestCatalogRoundTrip:
    def test_unpack_reconstructs_every_kernel(self):
        kernels = all_kernels()
        pack = KernelPack.from_kernels(kernels)
        assert pack.unpack() == list(kernels)

    def test_names_follow_pack_order(self):
        kernels = all_kernels("rodinia")
        pack = pack_kernels(kernels)
        assert pack.names == tuple(k.full_name for k in kernels)
        assert len(pack) == len(kernels)

    def test_single_kernel_access(self):
        kernels = all_kernels("shoc")
        pack = pack_kernels(kernels)
        for i in (0, len(kernels) // 2, len(kernels) - 1):
            assert pack.kernel(i) == kernels[i]


class TestArrayLayout:
    @pytest.fixture(scope="class")
    def pack(self):
        return pack_kernels(all_kernels())

    def test_characteristics_float64_contiguous(self, pack):
        for field in CHARACTERISTIC_FIELDS:
            arr = pack.ch(field)
            assert arr.dtype == np.float64
            assert arr.flags["C_CONTIGUOUS"]
            assert arr.shape == (len(pack),)

    def test_geometry_and_resources_int64(self, pack):
        for field in GEOMETRY_FIELDS:
            assert pack.geometry[field].dtype == np.int64
        for field in RESOURCE_FIELDS:
            assert pack.resources[field].dtype == np.int64

    def test_characteristics_match_scalar_accessors(self, pack):
        kernels = all_kernels()
        for field in CHARACTERISTIC_FIELDS:
            expected = [getattr(k.characteristics, field) for k in kernels]
            np.testing.assert_array_equal(pack.ch(field), expected)

    def test_derived_geometry_matches_properties(self, pack):
        kernels = all_kernels()
        np.testing.assert_array_equal(
            pack.num_workgroups,
            [k.geometry.num_workgroups for k in kernels],
        )
        np.testing.assert_array_equal(
            pack.waves_per_workgroup,
            [k.geometry.waves_per_workgroup for k in kernels],
        )
        np.testing.assert_array_equal(
            pack.total_waves,
            [k.geometry.total_waves for k in kernels],
        )

    def test_global_bytes_per_item_matches_scalar_sum(self, pack):
        kernels = all_kernels()
        expected = [
            k.characteristics.global_load_bytes_per_item
            + k.characteristics.global_store_bytes_per_item
            for k in kernels
        ]
        np.testing.assert_array_equal(
            pack.global_bytes_per_item, expected
        )


class TestValidation:
    def test_empty_list_rejected(self):
        with pytest.raises(WorkloadError):
            KernelPack.from_kernels([])

    def test_duplicate_names_rejected(self):
        kernel = all_kernels("rodinia")[0]
        with pytest.raises(WorkloadError):
            KernelPack.from_kernels([kernel, kernel])


class TestPackProperties:
    @settings(max_examples=50, deadline=None)
    @given(kernel_lists)
    def test_round_trip_is_identity(self, kernels):
        pack = KernelPack.from_kernels(kernels)
        assert pack.unpack() == kernels

    @settings(max_examples=50, deadline=None)
    @given(kernel_lists)
    def test_derived_waves_consistent(self, kernels):
        pack = KernelPack.from_kernels(kernels)
        np.testing.assert_array_equal(
            pack.total_waves,
            pack.num_workgroups * pack.waves_per_workgroup,
        )
