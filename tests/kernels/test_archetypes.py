"""Archetype builders: intent of each behaviour class, overridability."""

import pytest

from repro.gpu import HardwareConfig, GpuSimulator
from repro.kernels import (
    ARCHETYPE_BUILDERS,
    build_archetype,
    compute_kernel,
    latency_kernel,
    limited_parallelism_kernel,
    streaming_kernel,
    thrashing_kernel,
)

SIM = GpuSimulator()


class TestBuilders:
    @pytest.mark.parametrize("kind", sorted(ARCHETYPE_BUILDERS))
    def test_every_archetype_builds_and_simulates(self, kind):
        kernel = build_archetype(kind, "probe", suite="t")
        result = SIM.simulate(kernel, HardwareConfig(44, 1000, 1250))
        assert result.time_s > 0

    def test_unknown_archetype_lists_valid_kinds(self):
        with pytest.raises(KeyError, match="compute"):
            build_archetype("warpspeed", "x")

    def test_overrides_win_over_defaults(self):
        kernel = streaming_kernel("s", memory_parallelism=2.0)
        assert kernel.characteristics.memory_parallelism == 2.0

    def test_parameters_change_characteristics(self):
        light = compute_kernel("c", valu_ops=100.0)
        heavy = compute_kernel("c", valu_ops=5000.0)
        assert (
            heavy.characteristics.valu_ops_per_item
            > light.characteristics.valu_ops_per_item
        )

    def test_limited_parallelism_launch_size(self):
        kernel = limited_parallelism_kernel("p", num_workgroups=8,
                                            workgroup_size=128)
        assert kernel.geometry.num_workgroups == 8
        assert kernel.geometry.workgroup_size == 128


class TestArchetypeIntent:
    """Each archetype must exhibit its designed dominant trait."""

    def test_compute_archetype_high_intensity(self):
        kernel = compute_kernel("c")
        assert kernel.characteristics.arithmetic_intensity > 50

    def test_streaming_archetype_low_intensity(self):
        kernel = streaming_kernel("s")
        assert kernel.characteristics.arithmetic_intensity < 5

    def test_latency_archetype_has_dependence_chain(self):
        kernel = latency_kernel("l")
        assert kernel.characteristics.dependent_access_fraction > 0.5

    def test_thrashing_archetype_private_footprint_exceeds_l2(self):
        kernel = thrashing_kernel("t")
        ch = kernel.characteristics
        assert ch.shared_footprint == 0.0
        assert ch.footprint_bytes > 1 << 20  # exceeds the 1 MiB L2
        assert ch.l2_reuse > 0.5
