"""F1 — "scale directly with added computational capabilities":
perf vs CU count for compute-bound kernels."""

from benchmarks.conftest import run_once
from repro.report.experiments import f1_cu_scaling


def test_f1_cu_scaling_curves(benchmark, ctx):
    result = run_once(benchmark, f1_cu_scaling, ctx)
    print()
    print(result.text)

    assert len(result.data["kernels"]) >= 3
    for name, series in result.data["series"].items():
        speedup = series["y"]
        # Shape: near-proportional growth over the 11x CU range —
        # at least ~70% of ideal — and monotone within ripple.
        assert speedup[-1] >= 7.5, name
        assert all(
            b >= a * 0.97 for a, b in zip(speedup, speedup[1:])
        ), name
