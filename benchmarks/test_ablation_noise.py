"""Ablation — taxonomy stability under measurement noise.

The original study's inputs were wall-clock measurements with a few
percent of run-to-run variance. A taxonomy whose labels flip under
that variance would be an artifact of the measurement campaign rather
than of the kernels. Shape claim: at 2% noise, the vast majority of
labels are unchanged; label churn grows with the noise level but the
category *populations* stay within a few kernels of the clean run.
"""


from repro.report.tables import render_table
from repro.sweep.noise import perturb
from repro.taxonomy import classify


def agreement(reference, candidate):
    matches = sum(
        1
        for a, b in zip(reference.labels, candidate.labels)
        if a.category is b.category
    )
    return matches / len(reference.labels)


def test_taxonomy_stable_under_measurement_noise(benchmark, ctx):
    clean = ctx.taxonomy

    def evaluate():
        rows = []
        for sigma in (0.01, 0.02, 0.05):
            noisy = classify(perturb(ctx.dataset, sigma=sigma, seed=7))
            rows.append((sigma, agreement(clean, noisy), noisy))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    print()
    print(render_table(
        ["noise sigma", "label agreement"],
        [[sigma, agree] for sigma, agree, _ in rows],
        title="Ablation: taxonomy label stability vs measurement noise",
        precision=3,
    ))

    by_sigma = {sigma: agree for sigma, agree, _ in rows}
    assert by_sigma[0.01] >= 0.92
    assert by_sigma[0.02] >= 0.88
    # Monotone-ish: more noise, no more agreement (small tolerance).
    assert by_sigma[0.05] <= by_sigma[0.01] + 0.02

    # Category populations stay close to the clean run at 2% noise:
    # total variation distance across the histogram under 12%.
    clean_counts = clean.category_counts()
    noisy_counts = rows[1][2].category_counts()
    tvd = sum(
        abs(noisy_counts[c] - n) for c, n in clean_counts.items()
    ) / (2 * len(clean.labels))
    print(f"population total-variation distance @ 2% noise: {tvd:.3f}")
    assert tvd <= 0.12
