"""T5 — per-axis behaviour histogram.

The taxonomy's raw material: along each knob, how many kernels are
linear, sublinear, saturating, flat or inverse. Shape claims mirror
the physics: the memory axis has the largest flat population (compute
kernels never touch it), the CU axis owns the inverse population
(contention needs concurrency), and the engine axis is the most
universally responsive knob (everything clocks against it at the low
end).
"""

from benchmarks.conftest import run_once
from repro.report.experiments import t5_axis_behaviours


def test_t5_axis_behaviours(benchmark, ctx):
    result = run_once(benchmark, t5_axis_behaviours, ctx)
    print()
    print(result.text)

    data = result.data
    for axis in ("cu", "engine", "memory"):
        assert sum(data[axis].values()) == 267, axis

    # Inverse scaling is a CU-axis phenomenon.
    assert data["cu"]["inverse"] >= 10
    assert data["cu"]["inverse"] > data["engine"]["inverse"]
    assert data["cu"]["inverse"] > data["memory"]["inverse"]

    # The memory knob is the most often irrelevant one...
    assert data["memory"]["flat"] > data["engine"]["flat"]
    # ...and the engine knob responds (rising or saturating) for the
    # large majority of kernels.
    engine_responsive = (
        data["engine"]["linear"]
        + data["engine"]["sublinear"]
        + data["engine"]["saturating"]
    )
    assert engine_responsive >= 267 * 0.6
