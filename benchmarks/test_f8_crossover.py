"""F8 — compute-bound <-> bandwidth-bound crossover localisation for
balanced kernels over the (engine, memory) plane."""

from benchmarks.conftest import run_once
from repro.report.experiments import f8_crossover


def test_f8_crossover(benchmark, ctx):
    result = run_once(benchmark, f8_crossover, ctx)
    print()
    print(result.text)

    # Shape: balanced kernels exhibit both regimes somewhere on the
    # clock plane — the defining property of the class.
    crossing = [d for d in result.data.values() if d["has_crossover"]]
    assert len(crossing) >= 1
    for name, d in result.data.items():
        assert d["compute_fraction"] + d["bandwidth_fraction"] <= 1.0, name
