"""Extension — energy-optimal DVFS per taxonomy category.

The knobs the paper sweeps exist for power management; this experiment
connects the taxonomy to the energy question (the paper group's own
follow-on territory). Shape claims: the energy saved by per-kernel
DVFS relative to always-flagship operation is ordered by category —
plateau kernels save the most, compute-bound kernels the least — and
bandwidth-bound kernels' optima keep the memory clock high while
shedding CUs or engine clock.
"""

import numpy as np

from repro.power import DvfsOptimizer, Objective
from repro.report.tables import render_table
from repro.suites import kernel_by_name
from repro.sweep import reduced_space
from repro.taxonomy import TaxonomyCategory

SAMPLE_PER_CATEGORY = 4


def test_energy_savings_follow_taxonomy(benchmark, ctx):
    optimizer = DvfsOptimizer(space=reduced_space(2, 2, 2))

    def evaluate():
        savings = {}
        optima = {}
        for category in (
            TaxonomyCategory.COMPUTE_BOUND,
            TaxonomyCategory.BANDWIDTH_BOUND,
            TaxonomyCategory.PLATEAU,
        ):
            names = ctx.taxonomy.kernels_in(category)[
                :SAMPLE_PER_CATEGORY
            ]
            kernels = [kernel_by_name(n) for n in names]
            savings[category] = [
                optimizer.energy_saving_vs_flagship(k) for k in kernels
            ]
            optima[category] = [
                optimizer.optimise(k, Objective.MIN_ENERGY).config
                for k in kernels
            ]
        return savings, optima

    savings, optima = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    rows = [
        [cat.value, 100.0 * float(np.median(vals))]
        for cat, vals in savings.items()
    ]
    print()
    print(render_table(
        ["category", "median energy saving vs flagship (%)"],
        rows,
        title="Extension: per-kernel DVFS savings by category",
        precision=1,
    ))

    compute = float(np.median(savings[TaxonomyCategory.COMPUTE_BOUND]))
    plateau = float(np.median(savings[TaxonomyCategory.PLATEAU]))
    assert plateau > compute
    assert plateau > 0.15

    # Bandwidth-bound optima keep the memory clock at (or near) max.
    for config in optima[TaxonomyCategory.BANDWIDTH_BOUND]:
        assert config.memory_mhz >= 975.0
