"""Shared state for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (see the
per-experiment index in DESIGN.md) and asserts the qualitative *shape*
of the result — who wins, by roughly what factor, where the crossovers
and plateaus fall. The expensive inputs (the 237,897-point sweep and
the taxonomy over it) are collected once per benchmark session.
"""

from __future__ import annotations

import pytest

from repro.report.experiments import ExperimentContext
from repro.sweep import SweepCache


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """Experiment context with the sweep and taxonomy memoised.

    The dataset goes through the content-addressed sweep cache
    (``$GPUSCALE_CACHE_DIR`` or the default location): the first
    benchmark session simulates and stores it, repeat sessions load
    the ``.npz`` and skip simulation entirely.
    """
    context = ExperimentContext(cache=SweepCache())
    # Touch both so per-benchmark timings measure the analysis, not
    # the shared data collection.
    context.dataset
    context.taxonomy
    return context


def run_once(benchmark, fn, *args):
    """Run *fn* through pytest-benchmark with minimal repetition.

    Experiment producers are deterministic analyses over a fixed
    dataset; two rounds give a stable reading without inflating the
    harness runtime.
    """
    return benchmark.pedantic(fn, args=args, rounds=2, iterations=1,
                              warmup_rounds=0)
