"""Extension — cross-architecture taxonomy transfer quality.

The PR 9 acceptance experiment: for every ordered pair of registered
microarchitecture families, predict each catalog kernel's taxonomy
class on the target family from its measured surface on the source
family (leave-one-out over the cross-family corpus), and score the
class agreement with a confusion matrix. Shape claims: accuracy well
above the majority-class baseline on every pair, and single-digit
median surface error.

Also emits ``BENCH_families.json`` — the per-family taxonomy
distribution snapshot plus per-pair transfer accuracies — which CI
uploads alongside ``BENCH_sweep.json``.
"""

from __future__ import annotations

import itertools
import json
import os

from repro.analysis.transfer import evaluate_transfer, taxonomy_distributions
from repro.gpu.uarch import family_names

#: Where the snapshot artifact lands (override with
#: ``$BENCH_FAMILIES_OUT``).
_ARTIFACT_PATH = os.environ.get(
    "BENCH_FAMILIES_OUT", "BENCH_families.json"
)

#: Every ordered family pair; populated by the accuracy test, written
#: by the emitter (file order runs the emitter last).
_MEASUREMENTS: dict = {}


def test_transfer_accuracy_all_pairs(benchmark):
    """Class transfer beats 85% on every ordered family pair."""

    def evaluate_all():
        return {
            (source, target): evaluate_transfer(source, target)
            for source, target in itertools.permutations(
                family_names(), 2
            )
        }

    evaluations = benchmark.pedantic(
        evaluate_all, rounds=1, iterations=1
    )

    rows = []
    for (source, target), evaluation in sorted(evaluations.items()):
        rows.append(
            f"{source:>8} -> {target:<8} "
            f"accuracy {evaluation.accuracy:.3f} "
            f"surface error {evaluation.transfer_error:.1%}"
        )
        _MEASUREMENTS.setdefault("transfer", {})[
            f"{source}->{target}"
        ] = {
            "accuracy": evaluation.accuracy,
            "transfer_error": evaluation.transfer_error,
            "kernels": evaluation.matrix.total,
        }
    print("\n" + "\n".join(rows))

    for (source, target), evaluation in evaluations.items():
        assert evaluation.matrix.total == 267
        assert evaluation.accuracy >= 0.85, (
            f"{source}->{target} transfer accuracy "
            f"{evaluation.accuracy:.3f} below floor"
        )
        assert evaluation.transfer_error <= 0.10


def test_family_taxonomy_distributions(benchmark):
    """Per-family taxonomies migrate the way machine balance says."""
    distributions = benchmark.pedantic(
        taxonomy_distributions, rounds=1, iterations=1
    )
    assert set(distributions) == set(family_names())
    for name, counts in distributions.items():
        assert sum(counts.values()) == 267, name

    # The bandwidth-starved APU pushes kernels toward bandwidth-bound
    # and collapses the contention class relative to the discrete card.
    assert distributions["kaveri"]["bandwidth_bound"] > (
        distributions["hawaii"]["bandwidth_bound"]
    )
    assert distributions["kaveri"]["cu_inverse"] < (
        distributions["hawaii"]["cu_inverse"]
    )
    _MEASUREMENTS["taxonomy_distributions"] = distributions


def test_emit_families_artifact():
    """Write the snapshot artifact to ``BENCH_families.json``."""
    assert _MEASUREMENTS, "no transfer benchmarks ran before the emitter"
    with open(_ARTIFACT_PATH, "w") as handle:
        json.dump(_MEASUREMENTS, handle, indent=1)
        handle.write("\n")
    print(f"\nfamily snapshot written to {_ARTIFACT_PATH}")
