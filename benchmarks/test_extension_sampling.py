"""Extension — measurement-budget reduction via interpolation.

The campaign behind the paper is 891 measured configurations per
kernel. This experiment quantifies how much of it interpolation can
replace: reconstruct the full 267-kernel dataset from axis-aligned
subgrids of increasing size and report the error. Shape claims: error
falls monotonically with budget, and a ~10% measurement budget already
reconstructs the surfaces with single-digit median error — the
practical recipe for repeating the study on scarce testbed time.
"""

from repro.predict.sampling import budget_sweep
from repro.report.tables import render_table

BUDGETS = ((2, 2, 2), (3, 3, 3), (4, 3, 3), (6, 5, 5))


def test_sampling_budget_tradeoff(benchmark, ctx):
    # Sampling a third of the kernels keeps the bench quick while
    # covering every suite (stride 3 over the canonical order).
    sample_names = ctx.dataset.kernel_names[::3]
    dataset = ctx.dataset.subset(sample_names)

    results = benchmark.pedantic(
        budget_sweep, args=(dataset, BUDGETS), rounds=1, iterations=1
    )

    rows = [
        [
            f"{len(plan.cu_indices)}x{len(plan.engine_indices)}"
            f"x{len(plan.memory_indices)}",
            report.measured_configs,
            100.0 * report.savings_fraction,
            100.0 * report.median_abs_rel_error,
            100.0 * report.p95_abs_rel_error,
        ]
        for plan, report in results
    ]
    print()
    print(render_table(
        ["plan", "runs", "campaign saved %", "median err %",
         "p95 err %"],
        rows,
        title="Extension: reconstruction error vs measurement budget",
        precision=1,
    ))

    medians = [report.median_abs_rel_error for _, report in results]
    # Error falls (weakly) as the budget grows.
    assert all(b <= a + 1e-9 for a, b in zip(medians, medians[1:]))
    # A ~36-run plan (4% of the campaign) reaches single-digit median
    # error; the 150-run plan is near-exact.
    assert results[1][1].median_abs_rel_error < 0.10
    assert results[-1][1].median_abs_rel_error < 0.03
    assert results[-1][0].size <= 160
