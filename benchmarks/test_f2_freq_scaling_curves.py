"""F2 — engine-frequency scaling over the 5x clock range."""

from benchmarks.conftest import run_once
from repro.report.experiments import f2_engine_scaling


def test_f2_freq_scaling_curves(benchmark, ctx):
    result = run_once(benchmark, f2_engine_scaling, ctx)
    print()
    print(result.text)

    for name, series in result.data["series"].items():
        speedup = series["y"]
        # Shape: compute-bound kernels track the 5x engine-clock range
        # closely (>= ~80% of proportional).
        assert speedup[-1] >= 4.0, name
        assert all(
            b >= a * 0.99 for a, b in zip(speedup, speedup[1:])
        ), name
