"""F5 — "losing performance when more processing units are added"."""

from benchmarks.conftest import run_once
from repro.report.experiments import f5_inverse_cu


def test_f5_inverse_cu(benchmark, ctx):
    result = run_once(benchmark, f5_inverse_cu, ctx)
    print()
    print(result.text)

    assert len(result.data["kernels"]) >= 2
    for name, series in result.data["series"].items():
        speedup = series["y"]
        peak = max(speedup)
        # Shape: performance at 44 CUs sits >= 10% below the curve's
        # peak, and the peak is reached strictly before the end.
        assert speedup[-1] <= 0.9 * peak, name
        assert speedup.index(peak) < len(speedup) - 1, name
    # The drop magnitudes recorded by the taxonomy agree.
    for name, drop in result.data["drop_from_peak"].items():
        assert drop >= 0.10, name
