"""Extension — cross-kernel scaling prediction accuracy.

Not a figure from the IISWC'15 paper itself, but its published
follow-on: the authors used this dataset to predict performance across
hardware configurations with machine learning (HPCA'15). This bench
evaluates the shipped k-NN predictor with leave-one-out validation
over a kernel sample and asserts the headline property: a new kernel's
full 891-point surface is recovered from seven probe runs with small
median error.
"""

import numpy as np

from repro.predict import ScalingPredictor
from repro.report.tables import render_table


def test_leave_one_out_prediction(benchmark, ctx):
    predictor = ScalingPredictor(ctx.dataset, k=3)
    sample = ctx.dataset.kernel_names[::20]  # 14 held-out kernels

    def evaluate():
        return [
            (name, predictor.leave_one_out_error(name))
            for name in sample
        ]

    errors = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    values = [e for _, e in errors]
    print()
    print(render_table(
        ["held-out kernel", "median abs rel error"],
        [[n, e] for n, e in errors],
        title="Extension: 7-probe surface prediction (leave-one-out)",
        precision=3,
    ))
    print(f"median over sample: {np.median(values):.3f}")

    assert float(np.median(values)) < 0.35
    # At least half the sample predicts within 25%.
    assert float(np.mean(np.asarray(values) < 0.25)) >= 0.5
