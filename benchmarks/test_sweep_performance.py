"""Harness throughput: the data-collection sweep itself.

Not a paper artifact — this benchmark guards the property that makes
the reproduction practical: the analytical engine must sweep hundreds
of configurations per kernel in milliseconds, so the full 237,897-point
study stays interactive.
"""

from repro.suites import all_kernels
from repro.sweep import SweepRunner, reduced_space


def test_sweep_throughput(benchmark):
    kernels = all_kernels("shoc")
    space = reduced_space(2, 2, 2)

    dataset = benchmark(lambda: SweepRunner().run(kernels, space))

    points = dataset.num_kernels * dataset.space.size
    seconds = benchmark.stats.stats.mean
    points_per_second = points / seconds
    print(f"\nsweep throughput: {points_per_second:,.0f} points/s "
          f"({points} points in {seconds * 1e3:.1f} ms)")
    # The full study must complete in well under a minute.
    assert points_per_second > 5_000
