"""Harness throughput: the data-collection sweep itself.

Not a paper artifact — these benchmarks guard the property that makes
the reproduction practical: the analytical engine must sweep hundreds
of configurations per kernel in milliseconds, so the full 237,897-point
study stays interactive and what-if campaigns (ablations, noise
studies, sampling estimators) can re-run it thousands of times.

Three paths are timed: the whole-study engine (one broadcast over the
entire kernel x configuration lattice), the vectorized per-kernel batch
grid engine, and the per-point scalar oracle both are validated
against. The assertion floors are loose enough for shared CI machines
but tight enough to catch a 5x regression on any path. Each run also
appends its measurements to ``BENCH_sweep.json`` (CI uploads it, so
the trajectory of sweep throughput accumulates across commits).
"""

import json
import os
import time

from repro.gpu import GridMode
from repro.gpu.interval_batch import BatchIntervalModel
from repro.gpu.study_mt import StudyMTModel
from repro.kernels import KernelPack
from repro.suites import all_kernels
from repro.sweep import PAPER_SPACE, SweepRunner, reduced_space

#: Measurements gathered by the benchmarks in this module, emitted as
#: one JSON artifact by the final test (file order places it last).
_MEASUREMENTS = {}

#: Where the trajectory artifact lands (override with $BENCH_SWEEP_OUT).
_ARTIFACT_PATH = os.environ.get("BENCH_SWEEP_OUT", "BENCH_sweep.json")


def _throughput(dataset, seconds):
    points = dataset.num_kernels * dataset.space.size
    return points / seconds, points


def _record(line, points, seconds):
    _MEASUREMENTS[line] = {
        "points": int(points),
        "seconds": float(seconds),
        "points_per_second": float(points / seconds),
    }


def test_full_study_throughput(benchmark):
    """Whole-study path: all 267 kernels x 891 configs, one broadcast.

    This is the tentpole number: the full 237,897-point study through
    ``GridMode.STUDY``. The floor is 10x the original batch-loop
    requirement (500k points/s vs the 50k the per-kernel loop was held
    to); the engine measures in the millions on commodity hardware.
    """
    kernels = all_kernels()

    dataset = benchmark(
        lambda: SweepRunner(grid_mode=GridMode.STUDY).run(
            kernels, PAPER_SPACE
        )
    )

    seconds = benchmark.stats.stats.mean
    points_per_second, points = _throughput(dataset, seconds)
    _record("study", points, seconds)
    print(f"\nfull-study throughput: {points_per_second:,.0f} points/s "
          f"({points} points in {seconds * 1e3:.1f} ms)")
    assert points_per_second > 500_000


def test_sweep_throughput(benchmark):
    """Batch grid path: one NumPy broadcast per kernel."""
    kernels = all_kernels("shoc")
    space = reduced_space(2, 2, 2)

    dataset = benchmark(lambda: SweepRunner().run(kernels, space))

    seconds = benchmark.stats.stats.mean
    points_per_second, points = _throughput(dataset, seconds)
    _record("batch", points, seconds)
    print(f"\nbatch sweep throughput: {points_per_second:,.0f} points/s "
          f"({points} points in {seconds * 1e3:.1f} ms)")
    # The full study must complete in well under a second even through
    # the per-kernel loop (the quarantine fallback path).
    assert points_per_second > 100_000


def test_sweep_throughput_scalar(benchmark):
    """Scalar oracle path: one simulate call per grid point."""
    kernels = all_kernels("shoc")
    space = reduced_space(2, 2, 2)

    dataset = benchmark(
        lambda: SweepRunner(grid_mode=GridMode.SCALAR).run(kernels, space)
    )

    seconds = benchmark.stats.stats.mean
    points_per_second, points = _throughput(dataset, seconds)
    _record("scalar", points, seconds)
    print(f"\nscalar sweep throughput: {points_per_second:,.0f} points/s "
          f"({points} points in {seconds * 1e3:.1f} ms)")
    assert points_per_second > 5_000


def test_batch_speedup_over_scalar():
    """The batch engine must stay an order of magnitude ahead."""
    kernels = all_kernels("rodinia")
    space = reduced_space(2, 2, 2)

    start = time.perf_counter()
    scalar = SweepRunner(grid_mode=GridMode.SCALAR).run(kernels, space)
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batch = SweepRunner().run(kernels, space)
    batch_s = time.perf_counter() - start

    assert scalar.perf.shape == batch.perf.shape
    speedup = scalar_s / batch_s
    points = batch.num_kernels * batch.space.size
    print(f"\nscalar-vs-batch speedup: {speedup:.1f}x "
          f"({points} points: scalar {scalar_s * 1e3:.1f} ms, "
          f"batch {batch_s * 1e3:.1f} ms)")
    # Expected ~50-100x; a drop below 5x means the broadcast path has
    # regressed to per-point work.
    assert speedup > 5.0


def test_study_speedup_over_batch_loop():
    """Kernel-axis batching must beat the 267-iteration Python loop."""
    kernels = all_kernels()
    space = reduced_space(2, 2, 2)

    start = time.perf_counter()
    batch = SweepRunner().run(kernels, space)
    batch_s = time.perf_counter() - start

    start = time.perf_counter()
    study = SweepRunner(grid_mode=GridMode.STUDY).run(kernels, space)
    study_s = time.perf_counter() - start

    assert study.perf.shape == batch.perf.shape
    speedup = batch_s / study_s
    print(f"\nbatch-loop-vs-study speedup: {speedup:.1f}x "
          f"(batch loop {batch_s * 1e3:.1f} ms, "
          f"study {study_s * 1e3:.1f} ms)")
    # Expected ~2-5x on the reduced grid (the loop overhead is a fixed
    # per-kernel cost); anything below 1x means the study path has
    # silently fallen back to the loop.
    assert speedup > 1.0


#: One persistent multi-core study engine for the whole benchmark
#: session, so its process pool survives across rounds (pool start-up
#: is a one-time cost in production too, not a per-study cost).
_STUDY_MT_ENGINE = None


def _study_mt_engine():
    global _STUDY_MT_ENGINE
    if _STUDY_MT_ENGINE is None:
        _STUDY_MT_ENGINE = StudyMTModel()
    return _STUDY_MT_ENGINE


def test_study_mt_throughput(benchmark):
    """Multi-core study path: kernel-axis tiles over the process pool."""
    pack = KernelPack.from_kernels(all_kernels())
    engine = _study_mt_engine()

    benchmark(lambda: engine.simulate_study(pack, PAPER_SPACE))

    seconds = benchmark.stats.stats.mean
    points = len(pack) * PAPER_SPACE.size
    points_per_second = points / seconds
    _record("study-mt", points, seconds)
    stats = engine.last_stats
    _MEASUREMENTS["study-mt"].update(
        cores=os.cpu_count(),
        pool_workers=engine.workers,
        pool_used=stats.used_pool,
        shm_used=stats.shm_used,
    )
    print(f"\nstudy-mt throughput: {points_per_second:,.0f} points/s "
          f"({points} points in {seconds * 1e3:.1f} ms, "
          f"{engine.workers} workers, pool_used={stats.used_pool})")
    # Same floor as the single-core study path: even with no usable
    # pool the serial fallback is the batch engine plus tile bookkeeping.
    assert points_per_second > 500_000


def test_study_mt_speedup_over_single_core_study():
    """Hardware-gated floor: ≥ 2x the single-core study on ≥ 4 cores.

    On machines without enough cores (or where process pools cannot be
    created at all) the pool cannot pay for its IPC, so the gate
    degrades to the single-core sanity floor instead of a speedup.
    """
    pack = KernelPack.from_kernels(all_kernels())
    engine = _study_mt_engine()
    engine.simulate_study(pack, PAPER_SPACE)  # warm the pool + caches

    single = BatchIntervalModel()
    single.simulate_study(pack, PAPER_SPACE)  # warm the uarch state

    single_s = min(
        _timed(lambda: single.simulate_study(pack, PAPER_SPACE))
        for _ in range(3)
    )
    mt_s = min(
        _timed(lambda: engine.simulate_study(pack, PAPER_SPACE))
        for _ in range(3)
    )

    points = len(pack) * PAPER_SPACE.size
    speedup = single_s / mt_s
    cores = os.cpu_count() or 1
    gated = cores >= 4 and engine.last_stats.used_pool
    _MEASUREMENTS.setdefault("study-mt", {}).update(
        speedup_vs_study=float(speedup),
        speedup_gate_active=bool(gated),
    )
    print(f"\nstudy-mt-vs-study speedup: {speedup:.2f}x "
          f"({cores} cores, gate {'on' if gated else 'off'}: "
          f"single {single_s * 1e3:.1f} ms, tiled {mt_s * 1e3:.1f} ms)")
    if gated:
        assert speedup >= 2.0
    else:
        assert points / mt_s > 500_000


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_emit_trajectory_artifact():
    """Write this run's sweep measurements to ``BENCH_sweep.json``.

    File order runs this after the timed benchmarks, so the artifact
    carries whatever lines completed; CI uploads it, accumulating a
    per-commit throughput trajectory.
    """
    assert _MEASUREMENTS, "no sweep benchmarks ran before the emitter"
    with open(_ARTIFACT_PATH, "w") as handle:
        json.dump({"sweep": _MEASUREMENTS}, handle, indent=1)
        handle.write("\n")
    print(f"\nsweep trajectory written to {_ARTIFACT_PATH}")
    if _STUDY_MT_ENGINE is not None:
        _STUDY_MT_ENGINE.close()
