"""Harness throughput: the data-collection sweep itself.

Not a paper artifact — these benchmarks guard the property that makes
the reproduction practical: the analytical engine must sweep hundreds
of configurations per kernel in milliseconds, so the full 237,897-point
study stays interactive and what-if campaigns (ablations, noise
studies, sampling estimators) can re-run it thousands of times.

Two paths are timed: the vectorized batch grid engine (the default,
one NumPy broadcast per kernel) and the per-point scalar oracle it is
validated against. The assertion floors are loose enough for shared CI
machines but tight enough to catch a 5x regression on either path.
"""

import time

from repro.gpu import GridMode
from repro.suites import all_kernels
from repro.sweep import SweepRunner, reduced_space


def _throughput(dataset, seconds):
    points = dataset.num_kernels * dataset.space.size
    return points / seconds, points


def test_sweep_throughput(benchmark):
    """Batch grid path: the default sweep engine."""
    kernels = all_kernels("shoc")
    space = reduced_space(2, 2, 2)

    dataset = benchmark(lambda: SweepRunner().run(kernels, space))

    points_per_second, points = _throughput(
        dataset, benchmark.stats.stats.mean
    )
    print(f"\nbatch sweep throughput: {points_per_second:,.0f} points/s "
          f"({points} points in "
          f"{benchmark.stats.stats.mean * 1e3:.1f} ms)")
    # The full study must complete in well under a second.
    assert points_per_second > 50_000


def test_sweep_throughput_scalar(benchmark):
    """Scalar oracle path: one simulate call per grid point."""
    kernels = all_kernels("shoc")
    space = reduced_space(2, 2, 2)

    dataset = benchmark(
        lambda: SweepRunner(grid_mode=GridMode.SCALAR).run(kernels, space)
    )

    points_per_second, points = _throughput(
        dataset, benchmark.stats.stats.mean
    )
    print(f"\nscalar sweep throughput: {points_per_second:,.0f} points/s "
          f"({points} points in "
          f"{benchmark.stats.stats.mean * 1e3:.1f} ms)")
    assert points_per_second > 5_000


def test_batch_speedup_over_scalar():
    """The batch engine must stay an order of magnitude ahead."""
    kernels = all_kernels("rodinia")
    space = reduced_space(2, 2, 2)

    start = time.perf_counter()
    scalar = SweepRunner(grid_mode=GridMode.SCALAR).run(kernels, space)
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    batch = SweepRunner().run(kernels, space)
    batch_s = time.perf_counter() - start

    assert scalar.perf.shape == batch.perf.shape
    speedup = scalar_s / batch_s
    points = batch.num_kernels * batch.space.size
    print(f"\nscalar-vs-batch speedup: {speedup:.1f}x "
          f"({points} points: scalar {scalar_s * 1e3:.1f} ms, "
          f"batch {batch_s * 1e3:.1f} ms)")
    # Expected ~50-100x; a drop below 5x means the broadcast path has
    # regressed to per-point work.
    assert speedup > 5.0
