"""T2 — hardware grid: 891 configs, 5x / 8.3x / 11x knob ranges."""

import pytest

from benchmarks.conftest import run_once
from repro.report.experiments import t2_config_space


def test_t2_config_space(benchmark, ctx):
    result = run_once(benchmark, t2_config_space, ctx)
    print()
    print(result.text)

    # Paper claims: 891 hardware configurations; a 5x change in core
    # frequency, 8.3x in memory bandwidth, 11x in compute units.
    assert result.data["size"] == 891
    assert result.data["engine_ratio"] == pytest.approx(5.0)
    assert result.data["bandwidth_ratio"] == pytest.approx(8.33, abs=0.01)
    assert result.data["cu_ratio"] == pytest.approx(11.0)
