"""Ablation — analytical vs discrete-event timing engine.

DESIGN.md commits to cross-validating the fast analytical engine (used
for the 237,897-point sweep) against the workgroup-granularity event
engine on scaling *shape*. This bench times both engines on the same
kernel sample and asserts their axis-response agreement at paper
endpoints.
"""

from repro.gpu import Engine, GpuSimulator, HardwareConfig
from repro.suites import all_kernels

ENDPOINTS = [
    (HardwareConfig(4, 1000, 1250), HardwareConfig(44, 1000, 1250)),
    (HardwareConfig(44, 200, 1250), HardwareConfig(44, 1000, 1250)),
    (HardwareConfig(44, 1000, 150), HardwareConfig(44, 1000, 1250)),
]

#: One kernel per suite keeps the event engine's runtime modest.
def sample_kernels():
    seen = {}
    for kernel in all_kernels():
        seen.setdefault(kernel.suite, kernel)
    return list(seen.values())


def gains(simulator, kernels):
    result = []
    for kernel in kernels:
        for low, high in ENDPOINTS:
            result.append(
                simulator.performance(kernel, high)
                / simulator.performance(kernel, low)
            )
    return result


def test_engine_agreement_ablation(benchmark):
    kernels = sample_kernels()
    interval = GpuSimulator(Engine.INTERVAL)
    event = GpuSimulator(Engine.EVENT)

    interval_gains = gains(interval, kernels)
    event_gains = benchmark.pedantic(
        gains, args=(event, kernels), rounds=1, iterations=1
    )

    disagreements = 0
    for ig, eg in zip(interval_gains, event_gains):
        rising_i, rising_e = ig > 1.25, eg > 1.25
        falling_i, falling_e = ig < 0.8, eg < 0.8
        if (rising_i and falling_e) or (falling_i and rising_e):
            disagreements += 1
    print(f"\nengines compared on {len(interval_gains)} axis responses, "
          f"{disagreements} sign disagreements")
    # The engines may differ in magnitude but never flip a response.
    assert disagreements == 0
