"""F6 — distribution of all 267 kernels across taxonomy categories."""

from benchmarks.conftest import run_once
from repro.report.experiments import f6_category_histogram


def test_f6_category_histogram(benchmark, ctx):
    result = run_once(benchmark, f6_category_histogram, ctx)
    print()
    print(result.text)

    counts = result.data["counts"]
    assert sum(counts.values()) == 267
    # Shape: every named behaviour the abstract describes is populated,
    # and no single category swallows the study.
    populated = [c for c, n in counts.items() if n > 0]
    assert len(populated) >= 5
    assert max(counts.values()) < 267 / 2
