"""Extension — the taxonomy as an optimisation advisor.

Closing the loop on the paper's motivation: the characterisation is
useful when it tells developers what to *do*. For a sample of kernels
from each non-obvious class, the what-if playbook's top recommendation
must match the class's mechanism — contended-atomic kernels should be
told to privatise atomics, starved launches to grow, pointer chasers
to break their chains — and the predicted payoffs must be material.
"""

from repro.predict.what_if import what_if
from repro.report.tables import render_table
from repro.suites import kernel_by_name
from repro.taxonomy import TaxonomyCategory

#: Per-category: which scenarios count as "the right call".
#:
#: PARALLELISM_LIMITED accepts ``privatise_atomics`` as well as
#: ``grow_launch`` — deliberately. From scaling data alone, an
#: atomic-serialised kernel is indistinguishable from a launch-starved
#: one (both are CU-flat with a responsive engine clock); the what-if
#: counterfactual is exactly the instrument that disambiguates them,
#: and its picking atomics for the atomic kernels is the advisor
#: working, not failing.
EXPECTED_ADVICE = {
    TaxonomyCategory.PARALLELISM_LIMITED: {
        "grow_launch",
        "privatise_atomics",
    },
    TaxonomyCategory.CU_INVERSE: {
        "privatise_atomics",
        "lds_tiling",
        "coalesce",
    },
}

SAMPLE = 5


def test_advice_matches_taxonomy_mechanism(benchmark, ctx):
    def evaluate():
        rows = []
        aligned = 0
        considered = 0
        for category, expected in EXPECTED_ADVICE.items():
            names = ctx.taxonomy.kernels_in(category)[:SAMPLE]
            for name in names:
                results = what_if(kernel_by_name(name))
                top = results[0]
                considered += 1
                ok = top.scenario.name in expected and top.speedup > 1.1
                aligned += ok
                rows.append(
                    [name, category.value, top.scenario.name,
                     top.speedup, ok]
                )
        return rows, aligned, considered

    rows, aligned, considered = benchmark.pedantic(
        evaluate, rounds=1, iterations=1
    )

    print()
    print(render_table(
        ["kernel", "category", "top advice", "payoff", "aligned?"],
        rows,
        title="Extension: playbook advice vs taxonomy mechanism",
    ))
    print(f"aligned: {aligned}/{considered}")

    # The playbook's top call matches the class mechanism for the
    # large majority of sampled kernels, with material payoffs.
    assert aligned >= considered * 0.7
    payoffs = [r[3] for r in rows if r[4]]
    assert min(payoffs) > 1.1
