"""F3 — "scale ... with memory bandwidth": perf vs memory clock over
the 8.3x bandwidth range."""

from benchmarks.conftest import run_once
from repro.report.experiments import f3_bandwidth_scaling


def test_f3_bw_scaling_curves(benchmark, ctx):
    result = run_once(benchmark, f3_bandwidth_scaling, ctx)
    print()
    print(result.text)

    strong = 0
    for name, series in result.data["series"].items():
        speedup = series["y"]
        assert speedup[-1] >= 2.0, name
        if speedup[-1] >= 5.0:
            strong += 1
    # Shape: the best bandwidth-bound kernels convert most of the 8.3x
    # bandwidth range into speedup.
    assert strong >= 1
