"""T4 — per-suite taxonomy breakdown."""

from benchmarks.conftest import run_once
from repro.report.experiments import t4_suite_breakdown


def test_t4_suite_breakdown(benchmark, ctx):
    result = run_once(benchmark, t4_suite_breakdown, ctx)
    print()
    print(result.text)

    assert len(result.data) == 8
    # Shape claims: the graph suite is dominated by non-obvious
    # behaviours; the vendor SDK is dominated by intuitive ones.
    pannotia = result.data["pannotia"]
    pannotia_non_obvious = (
        pannotia["cu_inverse"]
        + pannotia["plateau"]
        + pannotia["parallelism_limited"]
    )
    assert pannotia_non_obvious >= pannotia["compute_bound"]

    amdapp = result.data["amdapp"]
    amdapp_intuitive = (
        amdapp["compute_bound"]
        + amdapp["bandwidth_bound"]
        + amdapp["balanced"]
    )
    assert amdapp_intuitive > 28 / 2
