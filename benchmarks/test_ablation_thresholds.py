"""Ablation — taxonomy threshold sensitivity.

DESIGN.md calls out the classifier's calibrated thresholds as a design
choice. This ablation re-runs the classification with the inverse-drop
threshold swept across a plausible range and reports how the category
populations move: the taxonomy is credible only if its headline
populations are stable in a band around the chosen values rather than
artifacts of one magic number.
"""

import pytest

import repro.taxonomy.axis as axis_module
from repro.report.tables import render_table
from repro.taxonomy import classify


@pytest.mark.parametrize("inverse_drop", [0.05, 0.10, 0.20])
def test_inverse_threshold_ablation(benchmark, ctx, inverse_drop,
                                    monkeypatch):
    monkeypatch.setattr(axis_module, "INVERSE_DROP", inverse_drop)

    result = benchmark.pedantic(
        classify, args=(ctx.dataset,), rounds=1, iterations=1
    )

    counts = {c.value: n for c, n in result.category_counts().items()}
    print()
    print(render_table(
        ["category", "kernels"],
        sorted(counts.items()),
        title=f"Ablation: INVERSE_DROP = {inverse_drop}",
    ))

    # The inverse class shrinks monotonically with the threshold but
    # never vanishes in the plausible band, and the intuitive majority
    # finding survives every setting.
    assert counts["cu_inverse"] >= 3
    assert 0.35 < result.intuitive_fraction() < 0.95
