"""Service throughput: the micro-batching query service under load.

Not a paper artifact — this guards the property that makes
``gpuscale serve`` useful as infrastructure: the micro-batcher must
amortise engine dispatch well enough that a single-worker service
sustains ≥1,000 requests/second end to end (socket, HTTP parse,
schema validation, batcher, engine, JSON response) on a shared CI
machine. The floor is ~2x below what commodity hardware measures, so
it catches a batching regression (per-request engine dispatch, lost
dedup) without flaking on slow runners.

Each run records sustained throughput, p50/p99 latency, and the
batch-size distribution scraped from ``/metrics`` into
``BENCH_service.json`` — CI uploads it, so the service-throughput
trajectory accumulates across commits alongside the sweep numbers.
"""

import asyncio
import json
import os
import re

from repro.service.loadgen import (
    encode_request,
    fetch,
    run_load,
    run_saturation,
    standard_point_payloads,
)
from repro.service.server import GpuScaleService, ServiceConfig

#: Measurements gathered here, emitted as one JSON artifact by the
#: final test (file order places it last).
_MEASUREMENTS = {}

#: Where the trajectory artifact lands (override with
#: ``$BENCH_SERVICE_OUT``).
_ARTIFACT_PATH = os.environ.get("BENCH_SERVICE_OUT", "BENCH_service.json")

#: The acceptance floor: sustained point-query throughput.
THROUGHPUT_FLOOR_RPS = 1_000

#: Fleet mode: ``--workers 4`` must clear 5,000 req/s on CI-class
#: hardware (4 vCPUs). On smaller boxes four processes time-share the
#: cores and the router's IPC costs what the parallelism can't repay,
#: so the floor falls back to a sanity bound instead of flaking.
FLEET_WORKERS = 4
FLEET_FLOOR_RPS = 5_000 if (os.cpu_count() or 1) >= 4 else 800

KERNELS = [
    "rodinia/bfs.kernel1",
    "shoc/triad.triad",
    "rodinia/nw.needle_1",
]
CONFIGS = [(44, 1000.0, 1250.0), (8, 600.0, 475.0)]


async def _serve_and_load(payload_pool, *, total, concurrency):
    """Boot an in-process service, run the load, scrape /metrics."""
    service = GpuScaleService(ServiceConfig(port=0, use_cache=False))
    await service.start()
    try:
        report = await run_load(
            service.config.host,
            service.port,
            payload_pool,
            total=total,
            concurrency=concurrency,
        )
        _status, metrics_body = await fetch(
            service.config.host, service.port, "GET", "/metrics"
        )
        return report, metrics_body.decode()
    finally:
        await service.shutdown(drain=True)


def _batch_size_distribution(metrics_text):
    """The ``gpuscale_batch_size`` histogram as {le: cumulative}."""
    distribution = {}
    for match in re.finditer(
        r'gpuscale_batch_size_bucket\{le="([^"]+)"\} (\d+)',
        metrics_text,
    ):
        distribution[match.group(1)] = int(match.group(2))
    sums = re.search(r"gpuscale_batch_size_sum (\S+)", metrics_text)
    count = re.search(r"gpuscale_batch_size_count (\d+)", metrics_text)
    return (
        distribution,
        float(sums.group(1)) if sums else 0.0,
        int(count.group(1)) if count else 0,
    )


def _record(line, report, metrics_text):
    distribution, size_sum, batches = _batch_size_distribution(
        metrics_text
    )
    _MEASUREMENTS[line] = {
        **report.as_dict(),
        "batches": batches,
        "mean_batch_size": size_sum / batches if batches else 0.0,
        "batch_size_distribution": distribution,
    }


def test_point_load_sustains_floor():
    """3,000 point queries over 16 keep-alive connections."""
    pool = standard_point_payloads(KERNELS, CONFIGS)

    report, metrics_text = asyncio.run(
        _serve_and_load(pool, total=3000, concurrency=16)
    )
    _record("points", report, metrics_text)

    print(
        f"\nservice point-load: {report.throughput_rps:,.0f} req/s, "
        f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms, "
        f"mean batch {_MEASUREMENTS['points']['mean_batch_size']:.1f}"
    )
    assert report.errors == 0
    assert report.requests == 3000
    assert report.throughput_rps > THROUGHPUT_FLOOR_RPS
    # The batcher must actually be coalescing: with 16 concurrent
    # clients, far fewer engine batches than requests.
    assert _MEASUREMENTS["points"]["mean_batch_size"] > 2.0
    # p99 stays within an interactive budget even on shared runners.
    assert report.p99_ms < 250.0


def test_mixed_load_with_grid_queries():
    """Points and full-surface grid queries interleaved."""
    space = {
        "cu_counts": [4, 16, 44],
        "engine_mhz": [300.0, 1000.0],
        "memory_mhz": [475.0, 1250.0],
    }
    pool = standard_point_payloads(KERNELS, CONFIGS) + [
        encode_request(
            "/v1/simulate", {"kernel": name, "space": space}
        )
        for name in KERNELS
    ]

    report, metrics_text = asyncio.run(
        _serve_and_load(pool, total=900, concurrency=8)
    )
    _record("mixed", report, metrics_text)

    print(
        f"\nservice mixed-load: {report.throughput_rps:,.0f} req/s, "
        f"p99 {report.p99_ms:.2f} ms"
    )
    assert report.errors == 0
    assert report.requests == 900
    # Grid surfaces are ~12 points each and ride the same batches;
    # a loose floor still catches per-request dispatch regressions.
    assert report.throughput_rps > THROUGHPUT_FLOOR_RPS / 2


def _fleet_batch_stats(metrics_text):
    """Batch-size stats from the ``worker="fleet"`` merged series."""
    distribution = {}
    for match in re.finditer(
        r'gpuscale_batch_size_bucket\{worker="fleet", '
        r'le="([^"]+)"\} (\d+)',
        metrics_text,
    ):
        distribution[match.group(1)] = int(match.group(2))
    sums = re.search(
        r'gpuscale_batch_size_sum\{worker="fleet"\} (\S+)', metrics_text
    )
    count = re.search(
        r'gpuscale_batch_size_count\{worker="fleet"\} (\d+)',
        metrics_text,
    )
    return (
        distribution,
        float(sums.group(1)) if sums else 0.0,
        int(count.group(1)) if count else 0,
    )


def test_fleet_load_sustains_floor():
    """3,000 point queries against a ``--workers 4`` fleet.

    The floor is hardware-gated: ≥5,000 req/s where four real cores
    exist (CI), a sanity bound where they don't. Worker count and the
    host's core count land in the artifact either way, so a trajectory
    point is never read against the wrong floor.
    """
    pool = standard_point_payloads(KERNELS, CONFIGS)

    async def scenario():
        service = GpuScaleService(
            ServiceConfig(
                port=0, use_cache=False, workers=FLEET_WORKERS
            )
        )
        await service.start()
        try:
            report = await run_load(
                service.config.host,
                service.port,
                pool,
                total=3000,
                concurrency=32,
            )
            _status, metrics_body = await fetch(
                service.config.host, service.port, "GET", "/metrics"
            )
            return report, metrics_body.decode()
        finally:
            await service.shutdown(drain=True)

    report, metrics_text = asyncio.run(scenario())
    distribution, size_sum, batches = _fleet_batch_stats(metrics_text)
    _MEASUREMENTS["fleet"] = {
        **report.as_dict(),
        "workers": FLEET_WORKERS,
        "cpu_count": os.cpu_count(),
        "floor_rps": FLEET_FLOOR_RPS,
        "batches": batches,
        "mean_batch_size": size_sum / batches if batches else 0.0,
        "batch_size_distribution": distribution,
    }

    print(
        f"\nservice fleet-load ({FLEET_WORKERS} workers, "
        f"{os.cpu_count()} cpus): {report.throughput_rps:,.0f} req/s, "
        f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms"
    )
    assert report.errors == 0
    assert report.requests == 3000
    assert report.throughput_rps > FLEET_FLOOR_RPS
    # The scrape really aggregated across processes.
    assert 'worker="fleet"' in metrics_text
    assert batches > 0


def test_open_loop_saturation_past_the_knee():
    """Fixed-rate arrivals through and past the service's knee.

    Below the knee the open-loop report shows (almost) pure 200s; at
    2.5x measured capacity the service must shed with 429s — never
    socket errors or silent drops — and arrival-to-completion latency
    must visibly grow. Both rungs land in the artifact.
    """
    pool = standard_point_payloads(KERNELS, CONFIGS)

    async def scenario():
        service = GpuScaleService(
            ServiceConfig(port=0, use_cache=False, queue_limit=16)
        )
        await service.start()
        host, port = service.config.host, service.port
        try:
            capacity = await run_load(
                host, port, pool, total=600, concurrency=16
            )
            below, past = await run_saturation(
                host, port, pool,
                rates_rps=[
                    capacity.throughput_rps * 0.4,
                    capacity.throughput_rps * 2.5,
                ],
                step_duration_s=1.5,
                connections=64,
            )
            return capacity, below, past
        finally:
            await service.shutdown(drain=True)

    capacity, below, past = asyncio.run(scenario())
    _MEASUREMENTS["saturation"] = {
        "capacity_rps": capacity.throughput_rps,
        "below_knee": below.as_dict(),
        "past_knee": past.as_dict(),
    }

    print(
        f"\nservice saturation: capacity "
        f"{capacity.throughput_rps:,.0f} rps; below knee "
        f"shed {below.shed_rate:.1%} p99 {below.p99_ms:.1f} ms; "
        f"past knee shed {past.shed_rate:.1%} "
        f"p99 {past.p99_ms:.1f} ms"
    )
    assert below.errors == 0 and past.errors == 0
    assert set(below.statuses) | set(past.statuses) <= {200, 429, 503}
    # Below the knee: essentially everything is answered.
    assert below.shed_rate < 0.1
    assert below.statuses.get(200, 0) > 0
    # Past the knee: the service sheds with 429s, and the open-loop
    # latency (arrival to completion) reflects the backlog.
    assert past.statuses.get(429, 0) > 0
    assert past.shed_rate > below.shed_rate
    assert past.p99_ms > below.p50_ms


def test_emit_trajectory_artifact():
    """Write this run's service measurements to ``BENCH_service.json``.

    File order runs this after the load tests, so the artifact
    carries whatever lines completed; CI uploads it, accumulating a
    per-commit service-throughput trajectory.
    """
    assert _MEASUREMENTS, "no service benchmarks ran before the emitter"
    with open(_ARTIFACT_PATH, "w") as handle:
        json.dump({"service": _MEASUREMENTS}, handle, indent=1)
        handle.write("\n")
    print(f"\nservice trajectory written to {_ARTIFACT_PATH}")
