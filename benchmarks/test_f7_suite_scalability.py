"""F7 — "a number of current benchmark suites do not scale to modern
GPU sizes, implying that either new benchmarks or new inputs are
warranted"."""

from benchmarks.conftest import run_once
from repro.report.experiments import f7_suite_scalability


def test_f7_suite_scalability(benchmark, ctx):
    result = run_once(benchmark, f7_suite_scalability, ctx)
    print()
    print(result.text)

    per_suite = result.data["per_suite"]
    failing = [s for s, d in per_suite.items() if not d["scales"]]
    # Shape: several mainstream suites fail the modern-GPU bar...
    assert len(failing) >= 2
    # ...while the modern proxy apps pass it.
    assert per_suite["proxyapps"]["scales"]

    # The stall histogram has real mass below the full device size.
    histogram = result.data["useful_cu_histogram"]
    stalled_early = sum(n for cu, n in histogram.items() if cu <= 22)
    assert stalled_early >= 267 * 0.2
