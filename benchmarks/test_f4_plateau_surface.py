"""F4 — "plateauing as frequency and bandwidth are increased": the
(engine, memory) surface of a plateau kernel."""

import numpy as np

from benchmarks.conftest import run_once
from repro.report.experiments import f4_plateau_surface


def test_f4_plateau_surface(benchmark, ctx):
    result = run_once(benchmark, f4_plateau_surface, ctx)
    print()
    print(result.text)

    surface = np.asarray(result.data["surface"])
    # Shape: the knobs jointly offer 5x x 8.3x headroom over this
    # plane, yet the kernel gains < 2.5x anywhere on it, and the top
    # quadrant (both knobs in their upper halves) is essentially flat.
    assert result.data["max_gain"] < 2.5
    top_quadrant = surface[surface.shape[0] // 2:, surface.shape[1] // 2:]
    assert top_quadrant.max() / top_quadrant.min() < 1.5
