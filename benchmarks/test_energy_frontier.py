"""Energy-serving throughput: batched Pareto frontiers under load.

Not a paper artifact — this guards the property that makes
``/v1/optimize`` servable: the vectorized energy path plus the
read-through energy cache must answer batched frontier sweeps far
faster than a per-point evaluation loop could. Two floors:

* the *direct* path (EnergyModel.surfaces + the Pareto sweep) prices
  a kernel's full 891-point frontier in well under 100 ms, and
* the *served* path sustains ≥10 frontier requests/second end to end
  (socket, schema, batcher, cache, selection, JSON) on a shared CI
  runner — conservative by an order of magnitude against commodity
  hardware, so it catches a vectorisation or cache regression
  without flaking on slow machines.

Each run records both rates into ``BENCH_energy.json``; CI uploads
it, accumulating a per-commit energy-serving trajectory.
"""

import asyncio
import json
import os
import time

from repro.power import DvfsOptimizer
from repro.service.loadgen import fetch
from repro.service.server import GpuScaleService, ServiceConfig
from repro.suites import all_kernels

#: Measurements gathered here, emitted as one JSON artifact by the
#: final test (file order places it last).
_MEASUREMENTS = {}

#: Where the trajectory artifact lands (override with
#: ``$BENCH_ENERGY_OUT``).
_ARTIFACT_PATH = os.environ.get("BENCH_ENERGY_OUT", "BENCH_energy.json")

#: Direct-path floor: full-grid frontiers per second via the
#: vectorized energy model (a per-point loop manages ~1/s).
DIRECT_FLOOR_PER_S = 20.0

#: Served-path floor: concurrent ``/v1/optimize`` frontier requests
#: per second through the full HTTP/batcher/cache stack.
SERVED_FLOOR_RPS = 10.0

#: Kernels the load mixes over (all suites represented).
KERNEL_COUNT = 8


def _kernel_names():
    names = []
    seen = set()
    for kernel in all_kernels():
        if kernel.suite in seen:
            continue
        seen.add(kernel.suite)
        names.append(kernel.full_name)
        if len(names) == KERNEL_COUNT:
            break
    return names


def test_direct_frontier_throughput():
    """The vectorized energy path prices full-grid frontiers fast."""
    optimizer = DvfsOptimizer()
    kernels = [
        kernel for kernel in all_kernels()
        if kernel.full_name in set(_kernel_names())
    ]
    # Warm import/JIT-free caches outside the timed region.
    optimizer.frontier(kernels[0])
    start = time.perf_counter()
    total_points = 0
    for kernel in kernels:
        total_points += len(optimizer.frontier(kernel))
    elapsed = time.perf_counter() - start
    rate = len(kernels) / elapsed
    _MEASUREMENTS["direct"] = {
        "kernels": len(kernels),
        "frontiers_per_second": rate,
        "mean_frontier_points": total_points / len(kernels),
    }
    print(f"\ndirect frontier rate: {rate:.1f}/s "
          f"({total_points / len(kernels):.1f} points each)")
    assert rate > DIRECT_FLOOR_PER_S


def test_served_frontier_throughput(tmp_path):
    """Batched ``/v1/optimize`` frontier requests through the stack.

    The mix repeats each kernel several times: repeats dedup in the
    batcher or hit the energy cache, which is exactly the serving
    pattern the endpoint exists for.
    """
    names = _kernel_names()
    bodies = [
        {"kernel": name, "frontier": True}
        for _ in range(5)
        for name in names
    ]

    async def wave(service):
        start = time.perf_counter()
        responses = await asyncio.gather(*(
            fetch(service.config.host, service.port, "POST",
                  "/v1/optimize", body)
            for body in bodies
        ))
        return responses, time.perf_counter() - start

    async def scenario():
        service = GpuScaleService(ServiceConfig(
            port=0, cache_dir=str(tmp_path / "cache"),
        ))
        await service.start()
        try:
            cold = await wave(service)
            warm = await wave(service)
            return cold, warm
        finally:
            await service.shutdown(drain=True)

    (cold, cold_s), (warm, warm_s) = asyncio.run(scenario())
    rates = {}
    for label, responses, elapsed in (
        ("cold", cold, cold_s), ("warm", warm, warm_s)
    ):
        payloads = [json.loads(body) for status, body in responses]
        for (status, _), payload in zip(responses, payloads):
            assert status == 200
            assert payload["frontier"]
        cached = sum(1 for p in payloads if p["from_cache"])
        rate = len(bodies) / elapsed
        rates[label] = rate
        _MEASUREMENTS[f"served_{label}"] = {
            "requests": len(bodies),
            "requests_per_second": rate,
            "from_cache": cached,
        }
        print(f"\nserved frontier rate ({label}): {rate:.1f} req/s "
              f"({cached}/{len(bodies)} cache hits)")
        if label == "warm":
            # Every repeat of an already-priced surface must be a
            # cache read, never an engine call.
            assert cached == len(bodies)
    assert rates["cold"] > SERVED_FLOOR_RPS
    assert rates["warm"] > SERVED_FLOOR_RPS


def test_emit_trajectory_artifact():
    """Write this run's energy measurements to ``BENCH_energy.json``.

    File order runs this after the load tests; CI uploads the file,
    accumulating a per-commit energy-serving trajectory.
    """
    assert _MEASUREMENTS, "no energy benchmarks ran before the emitter"
    with open(_ARTIFACT_PATH, "w") as handle:
        json.dump({"energy": _MEASUREMENTS}, handle, indent=1)
        handle.write("\n")
    print(f"\nenergy trajectory written to {_ARTIFACT_PATH}")
