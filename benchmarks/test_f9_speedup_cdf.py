"""F9 — end-to-end speedup CDFs (smallest -> largest configuration)."""

import pytest

from benchmarks.conftest import run_once
from repro.report.experiments import f9_speedup_cdf


def test_f9_speedup_cdf(benchmark, ctx):
    result = run_once(benchmark, f9_speedup_cdf, ctx)
    print()
    print(result.text)

    medians = result.data["medians"]
    # Shape: the hardware offers ~55x compute headroom; compute-bound
    # kernels get most of it, plateau kernels get almost none, and the
    # ordering of the category medians follows the taxonomy.
    assert result.data["ceiling"] == pytest.approx(55.0)
    assert medians["compute_bound"] > 20.0
    assert medians["plateau"] < 5.0
    assert (
        medians["compute_bound"]
        > medians["bandwidth_bound"]
        > medians["plateau"]
    )
    assert 1.0 < medians["all"] < 55.0
