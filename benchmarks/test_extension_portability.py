"""Extension — taxonomy portability across hardware families.

The paper studies one (fused-down) discrete GPU. This experiment asks
the question that determines whether its taxonomy is a property of
*kernels* or of *one machine*: re-run the full study on an APU-class
family (Kaveri-like: 8 CUs, shared DDR3, ~9x thinner memory) and
compare labels.

Shape claims: the stable core (pure compute kernels, plateau
microkernels) keeps its labels; migrations are *systematic*, not
random — they flow along the machine-balance shift (toward
bandwidth-bound on the bandwidth-starved APU) and out of the
contention classes (an 8-CU device cannot thrash like a 44-CU one).
"""

from collections import Counter

from repro.gpu.families import APU_SPACE
from repro.report.tables import render_table
from repro.suites import all_kernels
from repro.sweep import SweepRunner
from repro.taxonomy import TaxonomyCategory, classify


def test_taxonomy_portability(benchmark, ctx):
    discrete = ctx.taxonomy

    def evaluate():
        apu_dataset = SweepRunner().run(all_kernels(), APU_SPACE)
        return classify(apu_dataset)

    apu = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    pairs = Counter(
        (d.category, a.category)
        for d, a in zip(discrete.labels, apu.labels)
    )
    stable = sum(n for (d, a), n in pairs.items() if d is a)
    total = len(discrete.labels)

    migrations = [
        ((d, a), n) for (d, a), n in pairs.items() if d is not a
    ]
    migrations.sort(key=lambda kv: (-kv[1], kv[0][0].value,
                                    kv[0][1].value))
    rows = [[d.value, a.value, n] for (d, a), n in migrations[:8]]
    print()
    print(f"stable labels: {stable}/{total}")
    print(render_table(
        ["discrete label", "APU label", "kernels"],
        rows,
        title="Extension: top label migrations discrete -> APU",
    ))

    # A substantial stable core...
    assert stable / total >= 0.45
    # ...and systematic migration toward bandwidth-bound on the
    # bandwidth-starved APU:
    to_bandwidth = sum(
        n
        for (d, a), n in pairs.items()
        if a is TaxonomyCategory.BANDWIDTH_BOUND
        and d is not TaxonomyCategory.BANDWIDTH_BOUND
    )
    from_bandwidth = sum(
        n
        for (d, a), n in pairs.items()
        if d is TaxonomyCategory.BANDWIDTH_BOUND
        and a is not TaxonomyCategory.BANDWIDTH_BOUND
    )
    assert to_bandwidth > from_bandwidth
    # The contention class collapses on the small device:
    apu_counts = apu.category_counts()
    discrete_counts = discrete.category_counts()
    assert apu_counts[TaxonomyCategory.CU_INVERSE] < (
        discrete_counts[TaxonomyCategory.CU_INVERSE]
    )
