"""T1 — suite inventory: "267 GPGPU kernels from 97 programs"."""

from benchmarks.conftest import run_once
from repro.report.experiments import t1_suite_inventory


def test_t1_suite_inventory(benchmark, ctx):
    result = run_once(benchmark, t1_suite_inventory, ctx)
    print()
    print(result.text)

    # Paper claim: exactly 97 programs and 267 kernels.
    assert result.data["total_programs"] == 97
    assert result.data["total_kernels"] == 267
    # Eight mainstream suites of the era contribute.
    assert len(result.data["per_suite"]) == 8
