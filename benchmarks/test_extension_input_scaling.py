"""Extension — the paper's recommendation, quantified.

"...implying that either new benchmarks or new inputs are warranted."
This experiment applies the *new inputs* half of that sentence: rescale
the launches of the worst-scaling suite as larger inputs would, re-run
the study, and measure the recovery. The shape claim: starvation falls
monotonically toward zero and the suite crosses the scalability bar at
some finite input scale.
"""

from repro.analysis import study_input_scaling
from repro.report.tables import render_table
from repro.suites import all_kernels
from repro.sweep import reduced_space

FACTORS = (1.0, 8.0, 64.0, 512.0)


def test_input_scaling_recovers_polybench(benchmark, ctx):
    kernels = all_kernels("polybench")  # the worst offender in F7
    space = reduced_space(2, 2, 2)

    study = benchmark.pedantic(
        study_input_scaling,
        args=(kernels,),
        kwargs={"factors": FACTORS, "space": space},
        rounds=1,
        iterations=1,
    )

    rows = [
        [p.factor, 100.0 * p.starved_fraction,
         p.median_end_to_end_gain, p.suite_scales]
        for p in study.points
    ]
    print()
    print(render_table(
        ["input scale", "% starved", "median gain", "suite scales?"],
        rows,
        title="Extension: PolyBench scalability vs input scale",
        precision=1,
    ))

    first, last = study.points[0], study.points[-1]
    assert first.starved_fraction >= 0.4          # broken as shipped
    assert last.starved_fraction < first.starved_fraction
    assert study.recovers                          # inputs fix it
    assert last.median_end_to_end_gain > first.median_end_to_end_gain
