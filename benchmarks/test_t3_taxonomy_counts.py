"""T3 — the taxonomy: category definitions and kernel counts."""

from benchmarks.conftest import run_once
from repro.report.experiments import t3_taxonomy_counts


def test_t3_taxonomy_counts(benchmark, ctx):
    result = run_once(benchmark, t3_taxonomy_counts, ctx)
    print()
    print(result.text)

    counts = result.data["counts"]
    # Every kernel is classified exactly once.
    assert result.data["total"] == 267

    # Shape claims from the abstract: "many kernels scale in intuitive
    # ways" — the intuitive family is the (roughly half-or-more)
    # majority — while each non-obvious behaviour is present in a
    # meaningful minority.
    assert 0.4 < result.data["intuitive_fraction"] < 0.9
    assert counts["compute_bound"] >= 30
    assert counts["bandwidth_bound"] >= 20
    assert counts["cu_inverse"] >= 5
    assert counts["plateau"] >= 10
    assert counts["parallelism_limited"] >= 10
