"""F10 — unsupervised clusters vs the rule-based taxonomy.

The taxonomy is only a contribution if its categories are real
structure in the scaling data; k-means over raw scaling shapes must
substantially agree with the hand-written rules.
"""

from benchmarks.conftest import run_once
from repro.report.experiments import f10_cluster_agreement


def test_f10_cluster_agreement(benchmark, ctx):
    result = run_once(benchmark, f10_cluster_agreement, ctx)
    print()
    print(result.text)

    assert result.data["purity"] >= 0.6
    assert result.data["ari"] > 0.2
    # Distinct clusters map onto distinct taxonomy categories.
    assert len(set(result.data["majorities"].values())) >= 3
